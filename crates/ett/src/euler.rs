//! Euler tour construction and forest rooting.
//!
//! Input: the spanning forest adjacency (a symmetric CSR over the tree
//! edges) and per-vertex tree labels (`labels[v]` = the representative
//! vertex of `v`'s tree, with `labels[r] == r` — exactly what the
//! connectivity algorithms return). Output: [`RootedForest`] with parents
//! and global Euler-tour positions.
//!
//! Each tree of size `s` contributes a circuit of `2(s-1)` directed arcs;
//! its *vertex sequence* `v_0 … v_{2s-2}` (root first, then the head of
//! each arc in circuit order) has length `2s-1`. Trees are laid out
//! back-to-back in one global position space so the tag arrays of all
//! trees share a single RMQ structure; interval queries never cross a tree
//! boundary because a subtree's positions are contained in its tree's
//! segment.

use fastbcc_graph::{Graph, NONE, V};
use fastbcc_primitives::atomics::{as_atomic_u32, write_max_u32, write_min_u32};
use fastbcc_primitives::pack::{pack_index_into, pack_map_into};
use fastbcc_primitives::par::par_for;
use fastbcc_primitives::scan::prefix_sums;
use fastbcc_primitives::slice::{reuse_uninit, uninit_vec, UnsafeSlice};

use crate::listrank::{rank_circular_lists_in, ListRankScratch};

/// A rooted spanning forest with Euler-tour tags.
#[derive(Default)]
pub struct RootedForest {
    /// Parent of each vertex; `NONE` for tree roots (and isolated vertices).
    pub parent: Vec<V>,
    /// Global tour position of the first appearance of each vertex.
    pub first: Vec<u32>,
    /// Global tour position of the last appearance of each vertex.
    pub last: Vec<u32>,
    /// Vertex at every global tour position (length `2n - #trees`).
    pub tour_vertex: Vec<V>,
    /// One root per tree, in layout order.
    pub roots: Vec<V>,
}

impl RootedForest {
    /// Total length of the concatenated vertex sequences.
    pub fn tour_len(&self) -> usize {
        self.tour_vertex.len()
    }

    /// True iff `u` is an ancestor of `v` (including `u == v`) — the
    /// interval containment test of Alg. 1 (`Back`).
    #[inline]
    pub fn is_ancestor(&self, u: V, v: V) -> bool {
        self.first[u as usize] <= self.first[v as usize]
            && self.last[u as usize] >= self.first[v as usize]
    }

    /// Bytes of auxiliary memory held.
    pub fn bytes(&self) -> usize {
        4 * (self.parent.len()
            + self.first.len()
            + self.last.len()
            + self.tour_vertex.len()
            + self.roots.len())
    }

    /// Heap bytes currently reserved (capacity, not length) — the engine's
    /// fresh-allocation accounting reads this.
    pub fn heap_bytes(&self) -> usize {
        4 * (self.parent.capacity()
            + self.first.capacity()
            + self.last.capacity()
            + self.tour_vertex.capacity()
            + self.roots.capacity())
    }
}

/// Reusable buffers for [`root_forest_in`]: the per-arc successor/rank
/// arrays of the Euler circuits plus the per-tree layout tables.
#[derive(Default)]
pub struct EttScratch {
    pos_of_root: Vec<u32>,
    sizes: Vec<u32>,
    offsets: Vec<usize>,
    src: Vec<V>,
    succ: Vec<u32>,
    start_arcs: Vec<u32>,
    rank: Vec<u32>,
    listrank: ListRankScratch,
}

impl EttScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserve for an `n`-vertex forest (arc arrays hold up to
    /// `2(n-1)` entries; the list-ranking sample tables are pinned to
    /// their high-probability bound so warm solves never grow them).
    pub fn reserve(&mut self, n: usize) {
        self.pos_of_root.reserve(n);
        self.sizes.reserve(n);
        self.offsets.reserve(n);
        self.src.reserve(2 * n);
        self.succ.reserve(2 * n);
        self.start_arcs.reserve(n);
        self.rank.reserve(2 * n);
        self.listrank.reserve(2 * n, 64);
    }

    /// Heap bytes currently reserved (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        4 * (self.pos_of_root.capacity()
            + self.sizes.capacity()
            + self.src.capacity()
            + self.succ.capacity()
            + self.start_arcs.capacity()
            + self.rank.capacity())
            + 8 * self.offsets.capacity()
            + self.listrank.heap_bytes()
    }
}

/// Root every tree of the forest and compute Euler-tour tags.
///
/// * `tree` — symmetric CSR adjacency of the forest edges;
/// * `labels` — tree label per vertex (`labels[r] == r` for the root used).
pub fn root_forest(tree: &Graph, labels: &[u32], seed: u64) -> RootedForest {
    let mut out = RootedForest::default();
    let mut scratch = EttScratch::new();
    root_forest_in(tree, labels, seed, &mut out, &mut scratch);
    out
}

/// [`root_forest`] writing into a caller-owned [`RootedForest`], with every
/// intermediate (arc sources, circuit successors, list-ranking arrays) in
/// `scratch` — the engine's repeated-solve path.
pub fn root_forest_in(
    tree: &Graph,
    labels: &[u32],
    seed: u64,
    out: &mut RootedForest,
    scratch: &mut EttScratch,
) {
    let n = tree.n();
    assert_eq!(labels.len(), n);
    let m_arcs = tree.m();

    // --- roots, tree sizes, per-tree layout offsets ----------------------
    pack_index_into(n, |v| labels[v] == v as u32, &mut out.roots);
    let roots = &out.roots;
    // size[t] = vertices in tree t (indexed by root order); count via a
    // per-root atomic histogram.
    let pos_of_root = &mut scratch.pos_of_root;
    pos_of_root.clear();
    pos_of_root.resize(n, u32::MAX);
    {
        let view = UnsafeSlice::new(pos_of_root.as_mut_slice());
        // SAFETY: roots are distinct vertices, so the writes are disjoint.
        par_for(roots.len(), |t| unsafe {
            view.write(roots[t] as usize, t as u32)
        });
    }
    let pos_of_root = &*pos_of_root;
    let sizes = &mut scratch.sizes;
    sizes.clear();
    sizes.resize(roots.len(), 0);
    {
        let counts = as_atomic_u32(sizes);
        par_for(n, |v| {
            let t = pos_of_root[labels[v] as usize];
            counts[t as usize].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
    }
    // Vertex-sequence length per tree is 2s-1; scan for global offsets.
    let offsets = &mut scratch.offsets;
    offsets.clear();
    offsets.extend(sizes.iter().map(|&s| 2 * s as usize - 1));
    let total_tour = prefix_sums(offsets);
    let offsets = &*offsets;
    debug_assert_eq!(total_tour, 2 * n - roots.len());

    // --- arc sources and circuit successors ------------------------------
    let src = &mut scratch.src;
    // SAFETY: arc ranges partition 0..m, so every slot is written.
    unsafe { reuse_uninit(src, m_arcs) };
    {
        let view = UnsafeSlice::new(src.as_mut_slice());
        par_for(n, |u| {
            for a in tree.arc_range(u as V) {
                // SAFETY: arc ranges partition 0..m.
                unsafe { view.write(a, u as V) };
            }
        });
    }
    let src = &*src;
    // succ[a] for arc a = (u -> v): the arc after (v -> u) in v's rotation.
    let arcs = tree.arcs();
    let succ = &mut scratch.succ;
    // SAFETY: one write per arc index below.
    unsafe { reuse_uninit(succ, m_arcs) };
    {
        let view = UnsafeSlice::new(succ.as_mut_slice());
        par_for(m_arcs, |a| {
            let u = src[a];
            let v = arcs[a];
            let base = tree.arc_range(v).start;
            let deg = tree.degree(v);
            // Neighbor lists are sorted and duplicate-free: binary search.
            let j = tree
                .neighbors(v)
                .binary_search(&u)
                .expect("twin arc missing");
            let next = base + (j + 1) % deg;
            // SAFETY: one write per arc index.
            unsafe { view.write(a, next as u32) };
        });
    }
    let succ = &*succ;

    // --- list-rank the circuits ------------------------------------------
    // Start arc of tree t: the first outgoing arc of its root (trees of
    // size 1 have no arcs and are handled by layout alone).
    pack_map_into(
        roots.len(),
        |t| tree.degree(roots[t]) > 0,
        |t| tree.arc_range(roots[t]).start as u32,
        &mut scratch.start_arcs,
    );
    rank_circular_lists_in(
        succ,
        &scratch.start_arcs,
        seed,
        &mut scratch.rank,
        &mut scratch.listrank,
    );
    let rank = &scratch.rank;

    // --- scatter the vertex sequence and tags ----------------------------
    // SAFETY: position (offset + rank + 1) is unique per arc and the root
    // slots cover the remainder, so every slot is written.
    unsafe { reuse_uninit(&mut out.tour_vertex, total_tour) };
    {
        let view = UnsafeSlice::new(out.tour_vertex.as_mut_slice());
        par_for(roots.len(), |t| unsafe { view.write(offsets[t], roots[t]) });
        par_for(m_arcs, |a| {
            let t = pos_of_root[labels[src[a] as usize] as usize] as usize;
            // SAFETY: position (offset + rank + 1) is unique per arc.
            unsafe { view.write(offsets[t] + rank[a] as usize + 1, arcs[a]) };
        });
    }

    out.first.clear();
    out.first.resize(n, u32::MAX);
    out.last.clear();
    out.last.resize(n, 0);
    {
        let f = as_atomic_u32(&mut out.first);
        let l = as_atomic_u32(&mut out.last);
        let tour_ref = &out.tour_vertex;
        par_for(total_tour, |p| {
            let v = tour_ref[p] as usize;
            write_min_u32(&f[v], p as u32);
            write_max_u32(&l[v], p as u32);
        });
    }

    // --- parents ----------------------------------------------------------
    out.parent.clear();
    out.parent.resize(n, NONE);
    {
        let view = UnsafeSlice::new(out.parent.as_mut_slice());
        let first_ref = &out.first;
        par_for(m_arcs, |a| {
            let u = src[a];
            let v = arcs[a];
            // Exactly one arc into each non-root vertex comes from its
            // parent (the tree edge whose source appears earlier).
            if first_ref[u as usize] < first_ref[v as usize] {
                // SAFETY: unique writer per v (its unique tree parent).
                unsafe { view.write(v as usize, u) };
            }
        });
    }
}

/// Depth of the vertex at every global tour position (each tree's root is
/// depth 0).
///
/// Consecutive tour positions within a tree differ by exactly one tree
/// edge, so the depth sequence is a ±1 walk: `+1` when the tour enters a
/// vertex from its parent (which happens exactly once, at `first[v]`),
/// `-1` when it returns from a child, and a reset to 0 at each tree
/// boundary (the root's `first` position). One parallel step pass plus one
/// parallel inclusive scan: `O(t)` work, `O(log t)` span for tour length
/// `t`.
///
/// Combined with [`RootedForest::first`] this yields per-vertex depths
/// (`depth[v] = tour_depths(rf)[first[v]]`) and, via a range-min over the
/// interval between two `first` positions, Euler-tour LCA — the core
/// crate's query index consumes it exactly that way.
pub fn tour_depths(rf: &RootedForest) -> Vec<u32> {
    let t = rf.tour_len();
    // SAFETY: the scatter below writes every tour position before use.
    let mut steps: Vec<i32> = unsafe { uninit_vec(t) };
    {
        let view = UnsafeSlice::new(&mut steps);
        let tour = &rf.tour_vertex;
        par_for(t, |p| {
            let s = if p == 0 {
                0
            } else {
                let y = tour[p] as usize;
                if rf.parent[y] == tour[p - 1] {
                    1 // entering y from its parent (only at first[y])
                } else if rf.parent[y] == NONE && rf.first[y] as usize == p {
                    0 // new tree: the previous position closed a tree at depth 0
                } else {
                    -1 // returning from a child of y
                }
            };
            // SAFETY: position p written exactly once.
            unsafe { view.write(p, s) };
        });
    }
    fastbcc_primitives::scan::scan_inclusive_inplace(&mut steps, 0i32, |a, b| a + b);
    // Every inclusive prefix sum is a depth, hence non-negative:
    // reinterpret the buffer as u32 in place instead of copying it.
    let mut steps = std::mem::ManuallyDrop::new(steps);
    let (ptr, len, cap) = (steps.as_mut_ptr(), steps.len(), steps.capacity());
    // SAFETY: i32 and u32 share size/alignment, the allocation is handed
    // over exactly once (ManuallyDrop), and all values are >= 0.
    unsafe { Vec::from_raw_parts(ptr.cast::<u32>(), len, cap) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_graph::builder::from_edges;
    use fastbcc_graph::stats::cc_labels_seq;

    fn rooted(n: usize, edges: &[(V, V)]) -> (Graph, RootedForest) {
        let t = from_edges(n, edges);
        let labels = cc_labels_seq(&t);
        let rf = root_forest(&t, &labels, 7);
        (t, rf)
    }

    fn check_invariants(t: &Graph, rf: &RootedForest) {
        let n = t.n();
        assert_eq!(rf.tour_len(), 2 * n - rf.roots.len());
        for v in 0..n as V {
            let f = rf.first[v as usize];
            let l = rf.last[v as usize];
            assert!(f <= l, "first > last at {v}");
            assert_eq!(rf.tour_vertex[f as usize], v);
            assert_eq!(rf.tour_vertex[l as usize], v);
            match rf.parent[v as usize] {
                NONE => assert!(rf.roots.contains(&v)),
                p => {
                    assert!(t.has_edge(p, v), "parent edge {p}-{v} not in tree");
                    // Parent's interval strictly contains the child's.
                    assert!(rf.first[p as usize] < f);
                    assert!(rf.last[p as usize] >= l);
                    assert!(rf.is_ancestor(p, v));
                    assert!(!rf.is_ancestor(v, p));
                }
            }
        }
        // Consecutive tour vertices within one tree are adjacent in T.
        // (Tree boundaries are where a root's segment starts.)
        let mut boundary = vec![false; rf.tour_len()];
        let mut off = 0usize;
        for &r in &rf.roots {
            boundary[off] = true;
            // A root's segment is exactly [first[r], last[r]].
            assert_eq!(rf.first[r as usize] as usize, off);
            off = rf.last[r as usize] as usize + 1;
        }
        assert_eq!(off, rf.tour_len());
        for p in 1..rf.tour_len() {
            if !boundary[p] {
                let a = rf.tour_vertex[p - 1];
                let b = rf.tour_vertex[p];
                assert!(t.has_edge(a, b), "tour step {a}->{b} not a tree edge");
            }
        }
    }

    #[test]
    fn path_rooted_at_label_end() {
        let (t, rf) = rooted(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        check_invariants(&t, &rf);
        assert_eq!(rf.roots, vec![0]);
        // Parent chain follows the path from 0.
        assert_eq!(rf.parent[0], NONE);
        for v in 1..5u32 {
            assert_eq!(rf.parent[v as usize], v - 1);
        }
        // first: 0,1,2,3,4 ; last: 8,7,6,5,4 for a path tour.
        assert_eq!(rf.first, vec![0, 1, 2, 3, 4]);
        assert_eq!(rf.last, vec![8, 7, 6, 5, 4]);
    }

    #[test]
    fn star_children_intervals_disjoint() {
        let (t, rf) = rooted(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        check_invariants(&t, &rf);
        // Each leaf appears exactly once: first == last, intervals disjoint.
        for v in 1..5usize {
            assert_eq!(rf.first[v], rf.last[v]);
        }
        for a in 1..5u32 {
            for b in (a + 1)..5u32 {
                assert!(!rf.is_ancestor(a, b));
                assert!(!rf.is_ancestor(b, a));
                assert!(rf.is_ancestor(0, a));
            }
        }
    }

    #[test]
    fn forest_with_isolated_vertices() {
        // Two trees (sizes 3, 2) and two isolated vertices.
        let (t, rf) = rooted(7, &[(0, 1), (1, 2), (4, 5)]);
        check_invariants(&t, &rf);
        assert_eq!(rf.roots.len(), 4); // trees rooted at 0 and 4, isolated 3, 6
        assert_eq!(rf.tour_len(), 2 * 7 - 4);
        // Isolated vertices occupy a single slot.
        assert_eq!(rf.first[3], rf.last[3]);
        assert_eq!(rf.first[6], rf.last[6]);
        assert_eq!(rf.parent[3], NONE);
    }

    #[test]
    fn binary_tree_laminar_intervals() {
        let edges: Vec<(V, V)> = (1..31u32).map(|i| ((i - 1) / 2, i)).collect();
        let (t, rf) = rooted(31, &edges);
        check_invariants(&t, &rf);
        // Heap structure: parent in the rooted forest must match heap parent
        // (tree rooted at 0 = label of the single component).
        for i in 1..31u32 {
            assert_eq!(rf.parent[i as usize], (i - 1) / 2);
        }
        // Sibling subtree intervals are disjoint.
        for i in 1..15u32 {
            let (a, b) = (2 * i + 1, 2 * i + 2);
            if b < 31 {
                let disjoint = rf.last[a as usize] < rf.first[b as usize]
                    || rf.last[b as usize] < rf.first[a as usize];
                assert!(disjoint, "siblings {a},{b} overlap");
            }
        }
    }

    /// Oracle: depth of each vertex by walking parent pointers.
    fn depths_by_parents(rf: &RootedForest) -> Vec<u32> {
        (0..rf.parent.len())
            .map(|v| {
                let mut d = 0;
                let mut x = v as V;
                while rf.parent[x as usize] != NONE {
                    x = rf.parent[x as usize];
                    d += 1;
                }
                d
            })
            .collect()
    }

    #[test]
    fn tour_depths_match_parent_walks() {
        for (n, edges) in [
            (5, vec![(0u32, 1u32), (1, 2), (2, 3), (3, 4)]), // path
            (5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]),       // star
            (7, vec![(0, 1), (1, 2), (4, 5)]),               // forest + isolated
            (31, (1..31u32).map(|i| ((i - 1) / 2, i)).collect()), // binary tree
        ] {
            let (_, rf) = rooted(n, &edges);
            let d = tour_depths(&rf);
            assert_eq!(d.len(), rf.tour_len());
            let want = depths_by_parents(&rf);
            for v in 0..n {
                assert_eq!(
                    d[rf.first[v] as usize], want[v],
                    "first-position depth of {v}"
                );
                assert_eq!(
                    d[rf.last[v] as usize], want[v],
                    "last-position depth of {v}"
                );
            }
            // Every appearance of a vertex sits at its depth, and adjacent
            // positions within a tree differ by exactly 1.
            for p in 0..rf.tour_len() {
                assert_eq!(d[p], want[rf.tour_vertex[p] as usize], "position {p}");
            }
        }
    }

    #[test]
    fn tour_depths_empty_forest() {
        let (_, rf) = rooted(3, &[]);
        let d = tour_depths(&rf);
        assert_eq!(d, vec![0, 0, 0]); // three isolated single-slot trees
    }

    #[test]
    fn deterministic() {
        let edges: Vec<(V, V)> = (1..100u32).map(|i| (i / 3, i)).collect();
        let t = from_edges(100, &edges);
        let labels = cc_labels_seq(&t);
        let a = root_forest(&t, &labels, 5);
        let b = root_forest(&t, &labels, 5);
        assert_eq!(a.first, b.first);
        assert_eq!(a.last, b.last);
        assert_eq!(a.parent, b.parent);
    }
}
