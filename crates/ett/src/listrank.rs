//! Parallel list ranking with √n sampling.
//!
//! The paper's exact scheme (§5): "For list ranking, we coarsen the base
//! cases by sampling √n nodes. We start from these nodes in parallel, with
//! each node sequentially following the pointers until it visits the next
//! sample. Then we compute the offsets of each sample by prefix sum, pass
//! the offsets to other nodes by chasing the pointers from the samples, and
//! scatter all nodes into a contiguous array."
//!
//! Works on a set of disjoint **circular** successor lists (one Euler
//! circuit per tree). Each list must contain at least one designated start
//! node; ranks are positions relative to that start. With random sampling
//! the longest inter-sample segment is `O(√n log n)` w.h.p., which bounds
//! the span; total work is `O(n)`.

use fastbcc_primitives::par::par_for;
use fastbcc_primitives::rng::hash64_pair;
use fastbcc_primitives::slice::{reuse_uninit, UnsafeSlice};

/// Sentinel for "not a sample".
const NOT_SAMPLE: u32 = u32::MAX;

/// Reusable buffers for [`rank_circular_lists_in`]: the `O(n)` sample-id
/// array plus the `O(√n)` per-sample segment tables.
#[derive(Default)]
pub struct ListRankScratch {
    sample_of: Vec<u32>,
    is_start: Vec<bool>,
    samples: Vec<u32>,
    randoms: Vec<u32>,
    seg_len: Vec<u32>,
    next_sample: Vec<u32>,
    offset: Vec<u32>,
}

impl ListRankScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserve for lists totalling up to `n` nodes with up to `starts`
    /// designated start nodes. The random half of the sample set is
    /// binomial with mean `√n`, so its realized size varies run to run;
    /// reserving four times the mean (plus slack) pins the per-sample
    /// tables' capacity, keeping warm repeated solves allocation-free
    /// rather than growing on an unlucky draw.
    pub fn reserve(&mut self, n: usize, starts: usize) {
        let k = (starts + 4 * (n as f64).sqrt().ceil() as usize + 64).min(n + starts);
        self.sample_of.reserve(n);
        self.is_start.reserve(n);
        self.samples.reserve(k);
        self.randoms.reserve(k);
        self.seg_len.reserve(k);
        self.next_sample.reserve(k);
        self.offset.reserve(k);
    }

    /// Heap bytes currently reserved (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        4 * (self.sample_of.capacity()
            + self.samples.capacity()
            + self.randoms.capacity()
            + self.seg_len.capacity()
            + self.next_sample.capacity()
            + self.offset.capacity())
            + self.is_start.capacity()
    }
}

/// Rank the nodes of disjoint circular lists.
///
/// * `succ[i]` — successor of node `i`; every node lies on exactly one
///   circular list.
/// * `starts` — one designated start node per list (rank 0). Every circular
///   list must contain exactly one start.
///
/// Returns `rank[i]` = distance from its list's start to `i` along `succ`.
pub fn rank_circular_lists(succ: &[u32], starts: &[u32], seed: u64) -> Vec<u32> {
    let mut rank = Vec::new();
    let mut scratch = ListRankScratch::new();
    rank_circular_lists_in(succ, starts, seed, &mut rank, &mut scratch);
    rank
}

/// [`rank_circular_lists`] writing into a caller-owned rank buffer, with
/// all intermediates in `scratch` (the engine's repeated-solve path).
pub fn rank_circular_lists_in(
    succ: &[u32],
    starts: &[u32],
    seed: u64,
    rank_out: &mut Vec<u32>,
    scratch: &mut ListRankScratch,
) {
    let n = succ.len();
    // SAFETY: every node lies on exactly one sample segment, so pass 2
    // writes every slot.
    unsafe { reuse_uninit(rank_out, n) };
    if n == 0 {
        return;
    }
    let rank = rank_out;

    // --- choose samples: expected √n random nodes + every start ---------
    // sample_id[i] != NOT_SAMPLE marks node i as the sample with that index.
    let target = (n as f64).sqrt().ceil() as u64;
    let is_random_sample =
        |i: usize| -> bool { hash64_pair(seed, i as u64) % (n as u64).max(1) < target };
    let is_start = &mut scratch.is_start;
    is_start.clear();
    is_start.resize(n, false);
    for &s in starts {
        is_start[s as usize] = true;
    }
    let is_start = &*is_start;
    fastbcc_primitives::pack::pack_index_into(
        n,
        |i| !is_start[i] && is_random_sample(i),
        &mut scratch.randoms,
    );
    let samples = &mut scratch.samples;
    samples.clear();
    samples.reserve(starts.len() + scratch.randoms.len());
    samples.extend_from_slice(starts);
    samples.extend_from_slice(&scratch.randoms);
    let samples = &*samples;
    let k = samples.len();
    let sample_of = &mut scratch.sample_of;
    sample_of.clear();
    sample_of.resize(n, NOT_SAMPLE);
    {
        let view = UnsafeSlice::new(sample_of.as_mut_slice());
        // SAFETY: sample node ids are distinct, so the writes are disjoint.
        par_for(k, |si| unsafe {
            view.write(samples[si] as usize, si as u32)
        });
    }
    let sample_of = &*sample_of;

    // --- pass 1: walk each sample's segment, find next sample + length ---
    let seg_len = &mut scratch.seg_len;
    seg_len.clear();
    seg_len.resize(k, 0);
    let next_sample = &mut scratch.next_sample;
    next_sample.clear();
    next_sample.resize(k, 0);
    {
        let lens = UnsafeSlice::new(seg_len.as_mut_slice());
        let nexts = UnsafeSlice::new(next_sample.as_mut_slice());
        let sample_of_ref = &sample_of;
        par_for(k, |si| {
            let mut cur = succ[samples[si] as usize];
            let mut len = 1u32;
            while sample_of_ref[cur as usize] == NOT_SAMPLE {
                cur = succ[cur as usize];
                len += 1;
            }
            // SAFETY: slot si owned by this iteration.
            unsafe {
                lens.write(si, len);
                nexts.write(si, sample_of_ref[cur as usize]);
            }
        });
    }

    // --- sequential over samples: accumulate offsets per circuit --------
    // k = O(√n + #lists) so this pass is cheap; it also validates that each
    // start's circuit returns to itself.
    let seg_len = &*seg_len;
    let next_sample = &*next_sample;
    let offset = &mut scratch.offset;
    offset.clear();
    offset.resize(k, u32::MAX);
    for &s in starts {
        let s0 = sample_of[s as usize];
        let mut si = s0;
        let mut acc = 0u32;
        loop {
            debug_assert_eq!(offset[si as usize], u32::MAX, "two starts on one circuit");
            offset[si as usize] = acc;
            acc += seg_len[si as usize];
            si = next_sample[si as usize];
            if si == s0 {
                break;
            }
        }
    }

    // --- pass 2: re-walk segments, scattering final ranks ---------------
    let offset = &*offset;
    {
        let view = UnsafeSlice::new(rank.as_mut_slice());
        let sample_of_ref = &sample_of;
        par_for(k, |si| {
            let base = offset[si];
            debug_assert_ne!(base, u32::MAX, "sample on a circuit with no start");
            let mut cur = samples[si];
            let mut d = 0u32;
            loop {
                // SAFETY: every node belongs to exactly one sample segment.
                unsafe { view.write(cur as usize, base + d) };
                cur = succ[cur as usize];
                d += 1;
                if sample_of_ref[cur as usize] != NOT_SAMPLE {
                    break;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_primitives::rng::Rng;

    /// Build one circular list visiting a given permutation order.
    fn circle_from_order(order: &[u32]) -> Vec<u32> {
        let n = order.len();
        let mut succ = vec![0u32; n];
        for i in 0..n {
            succ[order[i] as usize] = order[(i + 1) % n];
        }
        succ
    }

    #[test]
    fn single_circle_identity_order() {
        let n = 1000;
        let order: Vec<u32> = (0..n as u32).collect();
        let succ = circle_from_order(&order);
        let rank = rank_circular_lists(&succ, &[0], 1);
        for i in 0..n {
            assert_eq!(rank[i], i as u32);
        }
    }

    #[test]
    fn single_circle_random_order_random_start() {
        let mut r = Rng::new(7);
        for n in [1usize, 2, 3, 17, 1000, 40_000] {
            let mut order: Vec<u32> = (0..n as u32).collect();
            r.shuffle(&mut order);
            let succ = circle_from_order(&order);
            let start = order[r.index(n)];
            let rank = rank_circular_lists(&succ, &[start], r.next_u64());
            // Verify by walking.
            let mut cur = start;
            for d in 0..n as u32 {
                assert_eq!(rank[cur as usize], d, "n={n}");
                cur = succ[cur as usize];
            }
            assert_eq!(cur, start);
        }
    }

    #[test]
    fn multiple_disjoint_circles() {
        let mut r = Rng::new(13);
        // Three circles of different sizes over one id space.
        let sizes = [5usize, 1, 300];
        let n: usize = sizes.iter().sum();
        let mut succ = vec![0u32; n];
        let mut starts = Vec::new();
        let mut base = 0usize;
        for &sz in &sizes {
            let mut order: Vec<u32> = (base as u32..(base + sz) as u32).collect();
            r.shuffle(&mut order);
            for i in 0..sz {
                succ[order[i] as usize] = order[(i + 1) % sz];
            }
            starts.push(order[0]);
            base += sz;
        }
        let rank = rank_circular_lists(&succ, &starts, 3);
        for (ci, &s) in starts.iter().enumerate() {
            let mut cur = s;
            for d in 0..sizes[ci] as u32 {
                assert_eq!(rank[cur as usize], d, "circle {ci}");
                cur = succ[cur as usize];
            }
            assert_eq!(cur, s);
        }
    }

    #[test]
    fn empty_input() {
        let rank = rank_circular_lists(&[], &[], 0);
        assert!(rank.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let order: Vec<u32> = (0..777u32).rev().collect();
        let succ = circle_from_order(&order);
        let a = rank_circular_lists(&succ, &[5], 9);
        let b = rank_circular_lists(&succ, &[5], 9);
        assert_eq!(a, b);
    }
}
