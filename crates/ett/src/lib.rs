//! # fastbcc-ett
//!
//! The Euler tour technique (Tarjan–Vishkin) — FAST-BCC's *Rooting* step.
//!
//! Given the spanning forest produced by *First-CC*, ETT roots every tree
//! and computes, for each vertex, its parent and the `first`/`last`
//! positions of its appearances on the Euler tour. Subtree containment then
//! becomes interval containment (`u` is an ancestor of `v` iff
//! `first[u] ≤ first[v]` and `last[u] ≥ last[v]`), which is what the
//! `Fence`/`Back` predicates of Alg. 1 test, and `low`/`high` become 1-D
//! range queries over the tour (handled by the core crate's RMQ).
//!
//! Construction (paper §5, *Euler Tour Technique*):
//!
//! 1. replicate each tree edge into two directed arcs and semisort by
//!    source — the forest adjacency built by the connectivity crate already
//!    has this layout;
//! 2. link each incoming arc `u→v` to `v`'s next outgoing arc (circular per
//!    vertex), forming one Euler circuit per tree;
//! 3. flatten the circuits with parallel **list ranking**, coarsened by √n
//!    sampling ([`listrank`]);
//! 4. derive `first`/`last`/`parent` from arc ranks with CAS priority
//!    writes.
//!
//! `O(n)` expected work, `O(log n)` span w.h.p.

pub mod euler;
pub mod listrank;

pub use euler::{root_forest, root_forest_in, tour_depths, EttScratch, RootedForest};
pub use listrank::{rank_circular_lists, rank_circular_lists_in, ListRankScratch};
