//! Property-based tests for the Euler tour technique: on arbitrary random
//! forests, the rooted structure must satisfy the laminar-interval algebra
//! that the Fence/Back predicates rely on.

use fastbcc_ett::{rank_circular_lists, root_forest};
use fastbcc_graph::builder::from_edges;
use fastbcc_graph::stats::cc_labels_seq;
use fastbcc_graph::{NONE, V};
use proptest::prelude::*;

/// Random forest: each vertex i>0 attaches to a random earlier vertex with
/// probability `p`, else starts a new tree.
fn arb_forest(nmax: usize) -> impl Strategy<Value = (usize, Vec<(V, V)>)> {
    (2..nmax, any::<u64>(), 0.5f64..1.0).prop_map(|(n, seed, p)| {
        let mut edges = Vec::new();
        for i in 1..n {
            let h = fastbcc_primitives::rng::hash64_pair(seed, i as u64);
            if fastbcc_primitives::rng::to_unit_f64(h) < p {
                let parent = (fastbcc_primitives::rng::hash64_pair(seed, i as u64 + 1_000_000)
                    % i as u64) as V;
                edges.push((parent, i as V));
            }
        }
        (n, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn rooted_forest_invariants((n, edges) in arb_forest(120), seed in any::<u64>()) {
        let t = from_edges(n, &edges);
        let labels = cc_labels_seq(&t);
        let rf = root_forest(&t, &labels, seed);

        prop_assert_eq!(rf.tour_len(), 2 * n - rf.roots.len());
        for v in 0..n as V {
            let (f, l) = (rf.first[v as usize], rf.last[v as usize]);
            prop_assert!(f <= l);
            prop_assert_eq!(rf.tour_vertex[f as usize], v);
            prop_assert_eq!(rf.tour_vertex[l as usize], v);
            match rf.parent[v as usize] {
                NONE => prop_assert!(rf.roots.contains(&v)),
                p => {
                    prop_assert!(t.has_edge(p, v));
                    prop_assert!(rf.first[p as usize] < f);
                    prop_assert!(rf.last[p as usize] >= l);
                }
            }
        }
        // Intervals form a laminar family: any two vertex intervals are
        // nested or disjoint.
        for u in 0..n.min(40) {
            for v in (u + 1)..n.min(40) {
                let (a1, b1) = (rf.first[u], rf.last[u]);
                let (a2, b2) = (rf.first[v], rf.last[v]);
                let nested = (a1 <= a2 && b1 >= b2) || (a2 <= a1 && b2 >= b1);
                let disjoint = b1 < a2 || b2 < a1;
                prop_assert!(nested || disjoint, "intervals cross: {u} {v}");
            }
        }
        // Ancestor test is antisymmetric except for self.
        for u in 0..n.min(30) as V {
            for v in 0..n.min(30) as V {
                if u != v {
                    prop_assert!(!(rf.is_ancestor(u, v) && rf.is_ancestor(v, u)));
                }
            }
        }
    }

    #[test]
    fn every_vertex_appears_degree_times(
        (n, edges) in arb_forest(100),
        seed in any::<u64>()
    ) {
        // On the tour, a non-root of degree d appears d times (once per
        // incoming arc); a root appears d+1 times (its leading position
        // plus each return); an isolated root appears once.
        let t = from_edges(n, &edges);
        let labels = cc_labels_seq(&t);
        let rf = root_forest(&t, &labels, seed);
        let mut appearances = vec![0usize; n];
        for &v in &rf.tour_vertex {
            appearances[v as usize] += 1;
        }
        for v in 0..n {
            let d = t.degree(v as V);
            let is_root = rf.roots.contains(&(v as V));
            let want = if is_root { d + 1 } else { d };
            prop_assert_eq!(appearances[v], want, "vertex {}", v);
        }
    }

    #[test]
    fn list_ranking_on_random_circles(perm_seed in any::<u64>(), n in 1usize..3000) {
        let mut r = fastbcc_primitives::rng::Rng::new(perm_seed);
        let mut order: Vec<u32> = (0..n as u32).collect();
        r.shuffle(&mut order);
        let mut succ = vec![0u32; n];
        for i in 0..n {
            succ[order[i] as usize] = order[(i + 1) % n];
        }
        let start = order[r.index(n)];
        let rank = rank_circular_lists(&succ, &[start], r.next_u64());
        let mut cur = start;
        for d in 0..n as u32 {
            prop_assert_eq!(rank[cur as usize], d);
            cur = succ[cur as usize];
        }
        prop_assert_eq!(cur, start);
    }
}
