//! Zero-copy memory-mapped graph snapshots.
//!
//! A validated on-disk binary format (`FBCCMAP1`) holding either backend
//! of the [`GraphView`](crate::view::GraphView) pair — the flat CSR or
//! the block-coded [`CompressedGraph`] — laid out so a loader can `mmap`
//! the file and serve solves *directly from the page cache*: every
//! section starts 8-byte aligned, tables are little-endian `u64`/`u32`,
//! and the adjacency payload is byte-identical to the in-RAM encoding.
//! Loading allocates nothing proportional to the graph (the kernel pages
//! data in on demand), which is what makes graphs larger than RAM-resident
//! `Vec` budgets solvable at all.
//!
//! ## Layout
//!
//! ```text
//! offset  size      field
//! 0       8         magic  b"FBCCMAP1"
//! 8       4         backend: u32 (1 = flat CSR, 2 = compressed)
//! 12      4         reserved (0)
//! 16      8         n: u64
//! 24      8         m: u64 (directed arc count)
//! 32      8         payload_len: u64 (compressed data bytes; 0 for flat)
//! 40      …         sections (8-byte aligned):
//!   flat:        offsets u64[n+1] · arcs u32[m]
//!   compressed:  arc_offsets u64[n+1] · byte_offsets u64[n+1] · data u8[payload_len]
//! ```
//!
//! ## Validation
//!
//! [`load_snapshot`] treats the file as **untrusted input**, to the same
//! standard as [`crate::io::load_binary`]: magic/version/backend checks,
//! exact file-length match against checked-arithmetic section sizes
//! before anything is touched, id-space bounds, offset monotonicity with
//! the right endpoints, arc ids `< n`, and — for the compressed backend —
//! a full decode validation of every vertex stream (varint bounds, exact
//! stream consumption, block-header consistency, sortedness). Violations
//! return [`io::ErrorKind::InvalidData`]; the loader never panics or
//! aborts on malformed bytes. The one platform caveat of any mmap reader
//! remains: truncating the file *while it is mapped* raises `SIGBUS` on
//! access, so snapshots should be replaced atomically (write + rename).

use crate::compressed::{validate_vertex_stream, CompressedGraph};
use crate::csr::Graph;
use crate::view::GraphView;
use fastbcc_primitives::edgemap::CsrView;
use fastbcc_primitives::reduce::all;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"FBCCMAP1";
const HEADER_LEN: u64 = 40;
const BACKEND_FLAT: u32 = 1;
const BACKEND_COMPRESSED: u32 = 2;

/// `InvalidData` error with a formatted message.
fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(all(unix, not(miri)))]
mod sys {
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        // void *mmap(void *addr, size_t len, int prot, int flags, int fd, off_t off)
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }
}

/// A read-only byte region: a real `mmap` on unix, a `u64`-aligned owned
/// buffer elsewhere (and for empty files, and under Miri — which has no
/// shim for file-backed mappings, but interprets the plain-read fallback
/// fine). Always 8-byte aligned at its base, which is what lets the
/// section slices cast to `&[u64]`/`&[u32]` without copying.
enum RegionInner {
    #[cfg(all(unix, not(miri)))]
    Mapped {
        ptr: *mut u8,
        len: usize,
    },
    Owned {
        buf: Vec<u64>,
        len: usize,
    },
}

pub(crate) struct MmapRegion(RegionInner);

// SAFETY: the region is immutable after construction (PROT_READ mapping
// or an owned buffer nothing mutates), so shared access is data-race-free.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Map (or read, on non-unix) the whole of `file`.
    fn open(file: &File, len: u64) -> io::Result<Self> {
        if len > usize::MAX as u64 {
            return Err(bad(format!("file length {len} exceeds the address space")));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Self(RegionInner::Owned {
                buf: Vec::new(),
                len: 0,
            }));
        }
        #[cfg(all(unix, not(miri)))]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: a fresh private read-only mapping of a file we hold
            // open; length is nonzero and the fd is valid. The pointer is
            // only read through `as_bytes` while `self` (which unmaps on
            // drop) is alive.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self(RegionInner::Mapped { ptr, len }))
        }
        #[cfg(any(not(unix), miri))]
        {
            use std::io::Read;
            let mut buf = vec![0u64; len.div_ceil(8)];
            // SAFETY: u64 -> u8 view of an initialized buffer.
            let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
            let mut r = io::BufReader::new(file);
            r.read_exact(bytes)?;
            Ok(Self(RegionInner::Owned { buf, len }))
        }
    }

    #[inline]
    fn as_bytes(&self) -> &[u8] {
        match &self.0 {
            #[cfg(all(unix, not(miri)))]
            RegionInner::Mapped { ptr, len } => {
                // SAFETY: the mapping is valid for `len` bytes until drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            RegionInner::Owned { buf, len } => {
                // SAFETY: u64 -> u8 view of an initialized buffer.
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len) }
            }
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.as_bytes().len()
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(all(unix, not(miri)))]
        if let RegionInner::Mapped { ptr, len } = self.0 {
            // SAFETY: exactly the region mmap returned; mapped once,
            // unmapped once.
            unsafe { sys::munmap(ptr, len) };
        }
    }
}

/// View `count` little-endian `u64`s starting at byte offset `at`.
#[inline]
fn u64s(bytes: &[u8], at: usize, count: usize) -> &[u64] {
    // SAFETY: any byte pattern is a valid u64; `at` is a multiple of 8
    // and the region base is 8-aligned (page-aligned mmap or Vec<u64>),
    // so the cast slice is fully aligned — asserted by `align_to`'s
    // empty prefix below. Little-endian layout is checked at load.
    let (pre, mid, _) = unsafe { bytes[at..at + 8 * count].align_to::<u64>() };
    debug_assert!(pre.is_empty());
    debug_assert_eq!(mid.len(), count);
    mid
}

/// View `count` little-endian `u32`s starting at byte offset `at`.
#[inline]
fn u32s(bytes: &[u8], at: usize, count: usize) -> &[u32] {
    // SAFETY: as in `u64s`; `at` is a multiple of 4.
    let (pre, mid, _) = unsafe { bytes[at..at + 4 * count].align_to::<u32>() };
    debug_assert!(pre.is_empty());
    debug_assert_eq!(mid.len(), count);
    mid
}

/// A flat CSR served straight out of a mapped snapshot.
pub struct MappedCsr {
    region: MmapRegion,
    n: usize,
    m: usize,
}

impl MappedCsr {
    #[inline]
    fn offsets(&self) -> &[u64] {
        u64s(self.region.as_bytes(), HEADER_LEN as usize, self.n + 1)
    }

    #[inline]
    fn arcs(&self) -> &[u32] {
        let at = HEADER_LEN as usize + 8 * (self.n + 1);
        u32s(self.region.as_bytes(), at, self.m)
    }

    /// Copy into an owned flat [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let offsets = self.offsets().iter().map(|&o| o as usize).collect();
        let arcs = self.arcs().to_vec();
        Graph::from_raw_parts(offsets, arcs)
    }
}

impl CsrView for MappedCsr {
    #[inline]
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn m_arcs(&self) -> usize {
        self.m
    }

    #[inline]
    fn arc_start(&self, v: usize) -> usize {
        self.offsets()[v] as usize
    }

    #[inline]
    fn neighbors_in<F: FnMut(usize, u32)>(&self, v: u32, lo: usize, hi: usize, mut f: F) {
        let base = self.offsets()[v as usize] as usize;
        for (j, &w) in self.arcs()[base + lo..base + hi].iter().enumerate() {
            f(lo + j, w);
        }
    }

    #[inline]
    fn neighbors_while<F: FnMut(u32) -> bool>(&self, v: u32, mut f: F) {
        let offs = self.offsets();
        let (lo, hi) = (offs[v as usize] as usize, offs[v as usize + 1] as usize);
        for &w in &self.arcs()[lo..hi] {
            if !f(w) {
                break;
            }
        }
    }
}

impl GraphView for MappedCsr {
    fn backend_name(&self) -> &'static str {
        "flat-mmap"
    }

    fn bytes(&self) -> usize {
        self.region.len()
    }
}

/// A block-coded compressed graph served straight out of a mapped
/// snapshot (same stream layout as [`CompressedGraph`]).
pub struct MappedCompressed {
    region: MmapRegion,
    n: usize,
    m: usize,
    payload_len: usize,
}

impl MappedCompressed {
    #[inline]
    fn arc_offsets(&self) -> &[u64] {
        u64s(self.region.as_bytes(), HEADER_LEN as usize, self.n + 1)
    }

    #[inline]
    fn byte_offsets(&self) -> &[u64] {
        let at = HEADER_LEN as usize + 8 * (self.n + 1);
        u64s(self.region.as_bytes(), at, self.n + 1)
    }

    #[inline]
    fn data(&self) -> &[u8] {
        let at = HEADER_LEN as usize + 16 * (self.n + 1);
        &self.region.as_bytes()[at..at + self.payload_len]
    }

    #[inline]
    fn stream(&self, v: usize) -> &[u8] {
        let offs = self.byte_offsets();
        &self.data()[offs[v] as usize..offs[v + 1] as usize]
    }

    /// Copy into an owned [`CompressedGraph`].
    pub fn to_compressed(&self) -> CompressedGraph {
        CompressedGraph::from_validated_parts(
            self.arc_offsets().to_vec(),
            self.byte_offsets().to_vec(),
            self.data().to_vec(),
        )
    }
}

impl CsrView for MappedCompressed {
    #[inline]
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn m_arcs(&self) -> usize {
        self.m
    }

    #[inline]
    fn arc_start(&self, v: usize) -> usize {
        self.arc_offsets()[v] as usize
    }

    #[inline]
    fn neighbors_in<F: FnMut(usize, u32)>(&self, v: u32, lo: usize, hi: usize, f: F) {
        crate::compressed::decode_neighbors_in(
            v,
            CsrView::degree(self, v),
            self.stream(v as usize),
            lo,
            hi,
            f,
        );
    }

    #[inline]
    fn neighbors_while<F: FnMut(u32) -> bool>(&self, v: u32, f: F) {
        crate::compressed::decode_neighbors_while(
            v,
            CsrView::degree(self, v),
            self.stream(v as usize),
            f,
        );
    }
}

impl GraphView for MappedCompressed {
    fn backend_name(&self) -> &'static str {
        "compressed-mmap"
    }

    fn bytes(&self) -> usize {
        self.region.len()
    }
}

/// Either backend, loaded zero-copy from a snapshot file. Implements
/// [`GraphView`] by per-call dispatch (one branch per *call*, not per
/// neighbor); match on the variant to monomorphize a whole solve instead.
pub enum MappedGraph {
    Flat(MappedCsr),
    Compressed(MappedCompressed),
}

macro_rules! dispatch {
    ($self:ident, $g:ident => $e:expr) => {
        match $self {
            MappedGraph::Flat($g) => $e,
            MappedGraph::Compressed($g) => $e,
        }
    };
}

impl CsrView for MappedGraph {
    #[inline]
    fn n(&self) -> usize {
        dispatch!(self, g => CsrView::n(g))
    }

    #[inline]
    fn m_arcs(&self) -> usize {
        dispatch!(self, g => g.m_arcs())
    }

    #[inline]
    fn arc_start(&self, v: usize) -> usize {
        dispatch!(self, g => g.arc_start(v))
    }

    #[inline]
    fn neighbors_in<F: FnMut(usize, u32)>(&self, v: u32, lo: usize, hi: usize, f: F) {
        dispatch!(self, g => g.neighbors_in(v, lo, hi, f))
    }

    #[inline]
    fn neighbors_while<F: FnMut(u32) -> bool>(&self, v: u32, f: F) {
        dispatch!(self, g => g.neighbors_while(v, f))
    }
}

impl GraphView for MappedGraph {
    fn backend_name(&self) -> &'static str {
        dispatch!(self, g => g.backend_name())
    }

    fn bytes(&self) -> usize {
        dispatch!(self, g => GraphView::bytes(g))
    }
}

fn write_header(w: &mut impl Write, backend: u32, n: u64, m: u64, payload: u64) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&backend.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&m.to_le_bytes())?;
    w.write_all(&payload.to_le_bytes())
}

/// Write `g` as a flat-CSR snapshot (see the [module docs](self) layout).
pub fn save_snapshot(g: &Graph, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_header(&mut w, BACKEND_FLAT, g.n() as u64, g.m() as u64, 0)?;
    for &o in g.offsets() {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &a in g.arcs() {
        w.write_all(&a.to_le_bytes())?;
    }
    w.flush()
}

/// Write `cg` as a compressed snapshot (see the [module docs](self) layout).
pub fn save_snapshot_compressed(cg: &CompressedGraph, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let n = CsrView::n(cg) as u64;
    let m = cg.m_arcs() as u64;
    write_header(&mut w, BACKEND_COMPRESSED, n, m, cg.data().len() as u64)?;
    for &o in cg.arc_offsets() {
        w.write_all(&o.to_le_bytes())?;
    }
    for &o in cg.byte_offsets() {
        w.write_all(&o.to_le_bytes())?;
    }
    w.write_all(cg.data())?;
    w.flush()
}

/// Map a snapshot written by [`save_snapshot`] /
/// [`save_snapshot_compressed`] and validate it fully (see the [module
/// docs](self)); the returned [`MappedGraph`] serves solves zero-copy.
pub fn load_snapshot(path: &Path) -> io::Result<MappedGraph> {
    if cfg!(target_endian = "big") {
        // The zero-copy table casts below read the file's little-endian
        // layout verbatim.
        return Err(bad("zero-copy snapshots require a little-endian host"));
    }
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    if file_len < HEADER_LEN {
        return Err(bad(format!("file length {file_len} below the header size")));
    }
    let region = MmapRegion::open(&file, file_len)?;
    let bytes = region.as_bytes();
    if &bytes[..8] != MAGIC {
        return Err(bad("bad magic"));
    }
    let backend = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let reserved = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if reserved != 0 {
        return Err(bad(format!("reserved header field is {reserved}, not 0")));
    }
    let n64 = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let m64 = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let payload64 = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
    if n64 >= u32::MAX as u64 {
        return Err(bad(format!("vertex count {n64} exceeds the u32 id space")));
    }
    if m64 > usize::MAX as u64 / 8 || payload64 > usize::MAX as u64 / 8 {
        return Err(bad("section size exceeds the address space"));
    }
    let tables = |k: u64| (n64 + 1).checked_mul(k);
    let want_len = match backend {
        BACKEND_FLAT => {
            if payload64 != 0 {
                return Err(bad("flat snapshot with nonzero payload length"));
            }
            tables(8)
                .and_then(|t| m64.checked_mul(4).and_then(|a| t.checked_add(a)))
                .and_then(|b| b.checked_add(HEADER_LEN))
        }
        BACKEND_COMPRESSED => tables(16)
            .and_then(|t| t.checked_add(payload64))
            .and_then(|b| b.checked_add(HEADER_LEN)),
        other => return Err(bad(format!("unknown backend tag {other}"))),
    }
    .ok_or_else(|| bad("header sizes overflow"))?;
    if want_len != file_len {
        return Err(bad(format!(
            "file length {file_len} does not match header (need {want_len})"
        )));
    }
    let (n, m) = (n64 as usize, m64 as usize);

    // Offsets table checks shared by both backends: starts at 0, monotone
    // (parallel), ends at the section length.
    let check_offsets = |offs: &[u64], end: u64, what: &str| -> io::Result<()> {
        if offs[0] != 0 {
            return Err(bad(format!("first {what} is {}, expected 0", offs[0])));
        }
        if offs[n] != end {
            return Err(bad(format!("last {what} {} != {end}", offs[n])));
        }
        if !all(n, |i| offs[i] <= offs[i + 1]) {
            let i = (0..n).find(|&i| offs[i] > offs[i + 1]).unwrap();
            return Err(bad(format!(
                "{what} {} at index {} decreases (< {})",
                offs[i + 1],
                i + 1,
                offs[i]
            )));
        }
        Ok(())
    };

    match backend {
        BACKEND_FLAT => {
            let g = MappedCsr { region, n, m };
            check_offsets(g.offsets(), m64, "offset")?;
            let arcs = g.arcs();
            if !all(m, |i| (arcs[i] as u64) < n64) {
                let i = (0..m).find(|&i| arcs[i] as u64 >= n64).unwrap();
                return Err(bad(format!(
                    "arc {} at index {i} out of range (n = {n})",
                    arcs[i]
                )));
            }
            Ok(MappedGraph::Flat(g))
        }
        _ => {
            let g = MappedCompressed {
                region,
                n,
                m,
                payload_len: payload64 as usize,
            };
            check_offsets(g.arc_offsets(), m64, "arc offset")?;
            check_offsets(g.byte_offsets(), payload64, "byte offset")?;
            // Full decode validation of every stream, parallel with a
            // sequential second pass for the first failure's message.
            let valid = |v: usize| {
                validate_vertex_stream(v as u32, CsrView::degree(&g, v as u32), g.stream(v), n)
            };
            if !all(n, |v| valid(v).is_ok()) {
                let msg = (0..n).find_map(|v| valid(v).err()).unwrap();
                return Err(bad(msg));
            }
            Ok(MappedGraph::Compressed(g))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fastbcc_mmap_test_{name}_{}", std::process::id()));
        p
    }

    fn decode_all<G: GraphView>(g: &G) -> (Vec<usize>, Vec<u32>) {
        let mut offsets = vec![0usize];
        let mut arcs = Vec::new();
        for v in 0..g.n() as u32 {
            g.for_neighbors(v, |w| arcs.push(w));
            offsets.push(arcs.len());
        }
        (offsets, arcs)
    }

    #[test]
    fn flat_snapshot_roundtrip() {
        let g = barbell(40, 7);
        let p = tmp("flat");
        save_snapshot(&g, &p).unwrap();
        let mg = load_snapshot(&p).unwrap();
        assert_eq!(mg.backend_name(), "flat-mmap");
        assert_eq!(CsrView::n(&mg), g.n());
        assert_eq!(mg.m_arcs(), g.m());
        let (offs, arcs) = decode_all(&mg);
        assert_eq!(offs, g.offsets());
        assert_eq!(arcs, g.arcs());
        match &mg {
            MappedGraph::Flat(f) => assert_eq!(&f.to_graph(), &g),
            _ => unreachable!(),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn compressed_snapshot_roundtrip() {
        let g = windmill(17);
        let cg = CompressedGraph::from_graph(&g);
        let p = tmp("comp");
        save_snapshot_compressed(&cg, &p).unwrap();
        let mg = load_snapshot(&p).unwrap();
        assert_eq!(mg.backend_name(), "compressed-mmap");
        let (offs, arcs) = decode_all(&mg);
        assert_eq!(offs, g.offsets());
        assert_eq!(arcs, g.arcs());
        match &mg {
            MappedGraph::Compressed(c) => assert_eq!(c.to_compressed(), cg),
            _ => unreachable!(),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_graph_snapshots() {
        for n in [0usize, 5] {
            let g = Graph::empty(n);
            let p = tmp(&format!("empty{n}"));
            save_snapshot(&g, &p).unwrap();
            let mg = load_snapshot(&p).unwrap();
            assert_eq!(CsrView::n(&mg), n);
            assert_eq!(mg.m_arcs(), 0);
            save_snapshot_compressed(&CompressedGraph::from_graph(&g), &p).unwrap();
            let mg = load_snapshot(&p).unwrap();
            assert_eq!(CsrView::n(&mg), n);
            std::fs::remove_file(&p).ok();
        }
    }
}
