//! Shared helper for the geometric generators: deterministic uniform points
//! in the unit square, bucketed into a uniform cell grid.

use crate::types::V;
use fastbcc_primitives::rng::{hash64_pair, to_unit_f64};
use fastbcc_primitives::semisort::semisort_by_small_key;

/// A 2-D point set with a cell index for neighborhood queries.
pub struct PointGrid {
    pub xs: Vec<f64>,
    pub ys: Vec<f64>,
    /// Cells per side.
    pub dim: usize,
    /// Cell side length (= 1 / dim).
    pub cell_w: f64,
    /// Point ids grouped by cell, with CSR offsets of length `dim*dim + 1`.
    pub cell_points: Vec<V>,
    pub cell_offsets: Vec<usize>,
}

impl PointGrid {
    /// `n` uniform points, grid sized for ≈ `per_cell` points per cell.
    pub fn uniform(n: usize, per_cell: usize, seed: u64) -> Self {
        let xs: Vec<f64> = (0..n)
            .map(|i| to_unit_f64(hash64_pair(seed, 2 * i as u64)))
            .collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| to_unit_f64(hash64_pair(seed, 2 * i as u64 + 1)))
            .collect();
        let dim = (((n.max(1)) as f64 / per_cell.max(1) as f64).sqrt().ceil() as usize).max(1);
        Self::from_points(xs, ys, dim)
    }

    /// Bucket existing points into a `dim × dim` grid.
    pub fn from_points(xs: Vec<f64>, ys: Vec<f64>, dim: usize) -> Self {
        let n = xs.len();
        let cell_w = 1.0 / dim as f64;
        let cell_of = |i: usize| -> usize {
            let cx = ((xs[i] * dim as f64) as usize).min(dim - 1);
            let cy = ((ys[i] * dim as f64) as usize).min(dim - 1);
            cy * dim + cx
        };
        let ids: Vec<V> = (0..n as V).collect();
        let (cell_points, cell_offsets) =
            semisort_by_small_key(&ids, dim * dim, |&i| cell_of(i as usize));
        Self {
            xs,
            ys,
            dim,
            cell_w,
            cell_points,
            cell_offsets,
        }
    }

    /// Cell coordinates of point `i`.
    #[inline]
    pub fn cell_xy(&self, i: usize) -> (usize, usize) {
        let cx = ((self.xs[i] * self.dim as f64) as usize).min(self.dim - 1);
        let cy = ((self.ys[i] * self.dim as f64) as usize).min(self.dim - 1);
        (cx, cy)
    }

    /// Points in cell `(cx, cy)`.
    #[inline]
    pub fn cell(&self, cx: usize, cy: usize) -> &[V] {
        let c = cy * self.dim + cx;
        &self.cell_points[self.cell_offsets[c]..self.cell_offsets[c + 1]]
    }

    /// Squared distance between points `i` and `j`.
    #[inline]
    pub fn dist2(&self, i: usize, j: usize) -> f64 {
        let dx = self.xs[i] - self.xs[j];
        let dy = self.ys[i] - self.ys[j];
        dx * dx + dy * dy
    }

    /// Visit every point in the square ring of cells at Chebyshev distance
    /// `r` around `(cx, cy)` (r = 0 is the home cell itself).
    pub fn for_ring(&self, cx: usize, cy: usize, r: usize, mut f: impl FnMut(V)) {
        let dim = self.dim as isize;
        let (cx, cy) = (cx as isize, cy as isize);
        let r = r as isize;
        let mut visit = |x: isize, y: isize| {
            if x >= 0 && x < dim && y >= 0 && y < dim {
                for &p in self.cell(x as usize, y as usize) {
                    f(p);
                }
            }
        };
        if r == 0 {
            visit(cx, cy);
            return;
        }
        for x in (cx - r)..=(cx + r) {
            visit(x, cy - r);
            visit(x, cy + r);
        }
        for y in (cy - r + 1)..(cy + r) {
            visit(cx - r, y);
            visit(cx + r, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_all_points() {
        let pg = PointGrid::uniform(5000, 8, 42);
        assert_eq!(pg.cell_points.len(), 5000);
        let mut seen = vec![false; 5000];
        for &p in &pg.cell_points {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn points_live_in_their_cell() {
        let pg = PointGrid::uniform(2000, 4, 7);
        for cy in 0..pg.dim {
            for cx in 0..pg.dim {
                for &p in pg.cell(cx, cy) {
                    assert_eq!(pg.cell_xy(p as usize), (cx, cy));
                }
            }
        }
    }

    #[test]
    fn rings_partition_neighborhood() {
        let pg = PointGrid::uniform(3000, 6, 9);
        // Counting all points over all rings from a center must count every
        // point exactly once.
        let (cx, cy) = (pg.dim / 2, pg.dim / 2);
        let mut count = 0usize;
        for r in 0..pg.dim {
            pg.for_ring(cx, cy, r, |_| count += 1);
        }
        assert_eq!(count, 3000);
    }

    #[test]
    fn deterministic() {
        let a = PointGrid::uniform(100, 4, 1);
        let b = PointGrid::uniform(100, 4, 1);
        assert_eq!(a.xs, b.xs);
        assert_eq!(a.ys, b.ys);
    }
}
