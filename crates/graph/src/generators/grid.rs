//! Grid-family generators: the paper's synthetic SQR/REC/SQR'/REC' inputs.
//!
//! Per the paper (§6): "We also create six synthetic graphs, including two
//! grids (SQR and REC), two sampled grids (SQR' and REC', each edge is
//! created with probability 0.6) … Each row and column in grid graphs are
//! circular." — i.e. the grids are tori.

use crate::builder::build_symmetric;
use crate::csr::Graph;
use crate::types::{EdgeList, V};
use fastbcc_primitives::pack::pack_map;
use fastbcc_primitives::rng::{hash64_pair, to_unit_f64};

/// 2-D grid of `rows × cols` vertices. With `wrap = true` (the paper's
/// setting) every row and column closes into a cycle (torus).
///
/// Vertex `(r, c)` has id `r * cols + c`. Generated in parallel.
pub fn grid2d(rows: usize, cols: usize, wrap: bool) -> Graph {
    grid2d_impl(rows, cols, wrap, None, 0)
}

/// Sampled 2-D grid: each torus edge is kept independently with
/// probability `p` (the paper uses `p = 0.6` for SQR'/REC').
pub fn grid2d_sampled(rows: usize, cols: usize, p: f64, seed: u64) -> Graph {
    grid2d_impl(rows, cols, true, Some(p), seed)
}

fn grid2d_impl(rows: usize, cols: usize, wrap: bool, sample: Option<f64>, seed: u64) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    // Edge slot encoding: slot 2*v is the "right" edge of cell v, slot
    // 2*v + 1 is its "down" edge. With wrap every slot exists (unless the
    // dimension is degenerate); without wrap the boundary slots are skipped.
    let slots = 2 * n;
    let keep = |s: usize| -> bool {
        let v = s / 2;
        let right = s.is_multiple_of(2);
        let (r, c) = (v / cols, v % cols);
        let exists = if right {
            // A right edge needs ≥ 2 columns; without wrap the last column
            // has none. Avoid duplicate edges on 2-wide wrapped dims.
            cols >= 2 && (wrap || c + 1 < cols) && !(wrap && cols == 2 && c == 1)
        } else {
            rows >= 2 && (wrap || r + 1 < rows) && !(wrap && rows == 2 && r == 1)
        };
        if !exists {
            return false;
        }
        match sample {
            None => true,
            Some(p) => to_unit_f64(hash64_pair(seed, s as u64)) < p,
        }
    };
    let edges = pack_map(slots, keep, |s| {
        let v = (s / 2) as V;
        let right = s % 2 == 0;
        let (r, c) = (v as usize / cols, v as usize % cols);
        let w = if right {
            (r * cols + (c + 1) % cols) as V
        } else {
            (((r + 1) % rows) * cols + c) as V
        };
        (v, w)
    });
    build_symmetric(&EdgeList { n, edges })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_grid_edge_count() {
        // rows*(cols-1) + (rows-1)*cols horizontal+vertical edges.
        let g = grid2d(4, 5, false);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m_undirected(), 4 * 4 + 3 * 5);
        assert!(g.is_symmetric());
    }

    #[test]
    fn torus_edge_count_and_regularity() {
        let g = grid2d(5, 7, true);
        assert_eq!(g.n(), 35);
        assert_eq!(g.m_undirected(), 2 * 35);
        // A torus with dims ≥ 3 is 4-regular.
        for v in 0..35u32 {
            assert_eq!(g.degree(v), 4, "vertex {v}");
        }
    }

    #[test]
    fn degenerate_dims() {
        // 1 × n torus: row wraps into a cycle, no vertical edges.
        let g = grid2d(1, 6, true);
        assert_eq!(g.m_undirected(), 6);
        // 2-wide wrapped dimension must not create duplicate edges.
        let g = grid2d(2, 4, true);
        assert!(!g.has_multi_edges());
        assert_eq!(g.m_undirected(), 4 + 8); // vertical: 4 pairs; horizontal: 2 rows * 4
                                             // Single vertex.
        let g = grid2d(1, 1, true);
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn sampled_grid_keeps_about_p() {
        let g = grid2d_sampled(100, 100, 0.6, 42);
        let full = 2 * 100 * 100;
        let frac = g.m_undirected() as f64 / full as f64;
        assert!((0.55..0.65).contains(&frac), "kept fraction {frac}");
        assert!(g.is_symmetric());
    }

    #[test]
    fn sampled_grid_deterministic() {
        let a = grid2d_sampled(50, 50, 0.6, 7);
        let b = grid2d_sampled(50, 50, 0.6, 7);
        assert_eq!(a, b);
        let c = grid2d_sampled(50, 50, 0.6, 8);
        assert_ne!(a.m(), c.m());
    }

    #[test]
    fn paper_shapes_scaled() {
        // SQR is a square torus, REC a 1:100 rectangle; smoke-test tiny
        // versions of both aspect ratios.
        let sqr = grid2d(32, 32, true);
        let rec = grid2d(8, 128, true);
        assert_eq!(sqr.n(), rec.n());
        assert_eq!(sqr.m_undirected(), 2 * 1024);
        assert_eq!(rec.m_undirected(), 2 * 1024);
    }
}
