//! k-nearest-neighbor graphs of uniform random points — the stand-in for
//! the paper's k-NN inputs (HH5, CH5, GL2–GL20, COS5).
//!
//! "In k-NN graphs, each vertex is a multi-dimensional data point and has k
//! edges pointing to its k-nearest neighbors (excluding itself)" (§6). The
//! directed k-NN arcs are then symmetrized like every other input. Varying
//! `k` with fixed points reproduces the GL2→GL20 sweep: larger `k` adds
//! edges and *shrinks* the diameter, which is the lever the paper uses to
//! show BFS-based baselines are diameter-bound.

use super::points::PointGrid;
use crate::builder::build_symmetric;
use crate::csr::Graph;
use crate::types::{EdgeList, NONE, V};
use fastbcc_primitives::par::par_for;
use fastbcc_primitives::slice::{uninit_vec, UnsafeSlice};

/// Exact k-NN graph of `n` uniform random points in the unit square.
pub fn knn(n: usize, k: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    let k = k.min(n.saturating_sub(1));
    if k == 0 {
        return Graph::empty(n);
    }
    let pg = PointGrid::uniform(n, 2 * k + 1, seed);

    // arcs[i*k .. (i+1)*k] = the k nearest neighbors of i (NONE-padded never
    // happens since k < n, but keep the guard for safety).
    // SAFETY: the scatter below writes all of row `i*k..(i+1)*k` for every
    // point (real neighbors, then NONE padding), covering every index.
    let mut arcs: Vec<(V, V)> = unsafe { uninit_vec(n * k) };
    {
        let view = UnsafeSlice::new(&mut arcs);
        par_for(n, |i| {
            let mut best = knn_of(&pg, i, k);
            best.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            for (slot, &(_, j)) in best.iter().enumerate() {
                // SAFETY: rows are disjoint per i.
                unsafe { view.write(i * k + slot, (i as V, j)) };
            }
            for slot in best.len()..k {
                unsafe { view.write(i * k + slot, (NONE, NONE)) };
            }
        });
    }
    let edges: Vec<(V, V)> = fastbcc_primitives::pack::filter_slice(&arcs, |&(u, _)| u != NONE);
    build_symmetric(&EdgeList { n, edges })
}

/// The `k` nearest neighbors of point `i` as `(dist², id)` pairs
/// (unsorted). Expands cell rings until the ring's minimum possible
/// distance exceeds the current k-th best distance.
fn knn_of(pg: &PointGrid, i: usize, k: usize) -> Vec<(f64, V)> {
    let (cx, cy) = pg.cell_xy(i);
    // Max-heap by distance, capped at k elements, kept as a sorted-insert
    // vec: k ≤ 20 in all our uses, so linear insertion beats a BinaryHeap.
    let mut best: Vec<(f64, V)> = Vec::with_capacity(k + 1);
    let push = |d: f64, j: V, best: &mut Vec<(f64, V)>| {
        if best.len() == k && d >= best[k - 1].0 {
            return;
        }
        let pos = best.partition_point(|&(bd, _)| bd < d);
        best.insert(pos, (d, j));
        if best.len() > k {
            best.pop();
        }
    };
    let max_ring = pg.dim; // worst case scans the whole grid
    for r in 0..=max_ring {
        // Any point in ring r is at distance ≥ (r-1) * cell_w from i
        // (conservative: i may sit at its cell's edge).
        if best.len() == k {
            let min_possible = (r as f64 - 1.0).max(0.0) * pg.cell_w;
            if min_possible * min_possible > best[k - 1].0 {
                break;
            }
        }
        pg.for_ring(cx, cy, r, |j| {
            if j as usize != i {
                push(pg.dist2(i, j as usize), j, &mut best);
            }
        });
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force k nearest for verification.
    fn naive_knn(pg: &PointGrid, i: usize, k: usize) -> Vec<V> {
        let mut d: Vec<(f64, V)> = (0..pg.xs.len())
            .filter(|&j| j != i)
            .map(|j| (pg.dist2(i, j), j as V))
            .collect();
        d.sort_by(|a, b| a.0.total_cmp(&b.0));
        d.truncate(k);
        d.into_iter().map(|(_, j)| j).collect()
    }

    #[test]
    fn matches_brute_force() {
        let n = 500;
        let k = 5;
        let pg = PointGrid::uniform(n, 2 * k + 1, 13);
        for i in (0..n).step_by(37) {
            let mut got: Vec<V> = knn_of(&pg, i, k).into_iter().map(|(_, j)| j).collect();
            let mut want = naive_knn(&pg, i, k);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "point {i}");
        }
    }

    #[test]
    fn knn_graph_shape() {
        let g = knn(2000, 3, 99);
        assert_eq!(g.n(), 2000);
        assert!(g.is_symmetric());
        // Directed arcs: 2000*3; symmetrized and deduped (mutual pairs merge):
        // between 3n and 6n directed arcs.
        assert!(g.m() >= 3 * 2000 && g.m() <= 6 * 2000, "m = {}", g.m());
        // Everyone has degree ≥ k (its own k outgoing arcs survive dedup).
        for v in 0..2000u32 {
            assert!(g.degree(v) >= 3);
        }
    }

    #[test]
    fn bigger_k_means_more_edges() {
        let g2 = knn(3000, 2, 5);
        let g5 = knn(3000, 5, 5);
        let g10 = knn(3000, 10, 5);
        assert!(g2.m() < g5.m());
        assert!(g5.m() < g10.m());
    }

    #[test]
    fn tiny_inputs() {
        let g = knn(1, 5, 0);
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
        let g = knn(2, 5, 0);
        assert_eq!(g.m_undirected(), 1); // k clamps to 1; single mutual pair
        let g = knn(5, 0, 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(knn(800, 4, 3), knn(800, 4, 3));
    }
}
