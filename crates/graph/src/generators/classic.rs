//! Small named graphs with closed-form biconnectivity structure.
//!
//! These are the correctness fixtures: for each family the number of BCCs,
//! the articulation points, and the bridges are known analytically, so the
//! test suites across crates assert against them.

use crate::builder::build_symmetric;
use crate::csr::Graph;
use crate::types::{EdgeList, V};

/// Path (chain) graph `0 - 1 - ... - n-1`. The paper's `Chn` inputs.
/// Every edge is a bridge; every internal vertex is an articulation point;
/// `n-1` BCCs of size 2.
pub fn path(n: usize) -> Graph {
    let mut el = EdgeList::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        el.push((i - 1) as V, i as V);
    }
    build_symmetric(&el)
}

/// Cycle graph: one single BCC, no articulation points (n ≥ 3).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3");
    let mut el = EdgeList::with_capacity(n, n);
    for i in 0..n {
        el.push(i as V, ((i + 1) % n) as V);
    }
    build_symmetric(&el)
}

/// Star graph: center 0, leaves 1..n. `n-1` BCCs (one per spoke); the
/// center is the unique articulation point (n ≥ 3).
pub fn star(n: usize) -> Graph {
    let mut el = EdgeList::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        el.push(0, i as V);
    }
    build_symmetric(&el)
}

/// Complete graph `K_n`: one BCC, no articulation points (n ≥ 3).
pub fn complete(n: usize) -> Graph {
    let mut el = EdgeList::with_capacity(n, n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            el.push(i as V, j as V);
        }
    }
    build_symmetric(&el)
}

/// Complete bipartite `K_{a,b}`: biconnected iff `a,b ≥ 2`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut el = EdgeList::with_capacity(a + b, a * b);
    for i in 0..a {
        for j in 0..b {
            el.push(i as V, (a + j) as V);
        }
    }
    build_symmetric(&el)
}

/// Theta graph: two terminals joined by three internally disjoint paths of
/// `len1/len2/len3` internal vertices each. A single BCC (it is 2-connected).
pub fn theta(len1: usize, len2: usize, len3: usize) -> Graph {
    let n = 2 + len1 + len2 + len3;
    let mut el = EdgeList::new(n);
    let s: V = 0;
    let t: V = 1;
    let mut next = 2u32;
    for &len in &[len1, len2, len3] {
        let mut prev = s;
        for _ in 0..len {
            el.push(prev, next);
            prev = next;
            next += 1;
        }
        el.push(prev, t);
    }
    build_symmetric(&el)
}

/// Barbell: two `K_k` cliques joined by a path of `bridge_len` edges.
/// BCCs: 2 cliques + `bridge_len` bridge edges.
pub fn barbell(k: usize, bridge_len: usize) -> Graph {
    assert!(k >= 3 && bridge_len >= 1);
    let n = 2 * k + bridge_len.saturating_sub(1);
    let mut el = EdgeList::new(n);
    // Clique A: 0..k, clique B: k..2k. Path links vertex k-1 to vertex k
    // through bridge_len-1 intermediate vertices 2k..2k+bridge_len-1.
    for i in 0..k {
        for j in (i + 1)..k {
            el.push(i as V, j as V);
            el.push((k + i) as V, (k + j) as V);
        }
    }
    let mut prev = (k - 1) as V;
    for b in 0..bridge_len.saturating_sub(1) {
        let mid = (2 * k + b) as V;
        el.push(prev, mid);
        prev = mid;
    }
    el.push(prev, k as V);
    build_symmetric(&el)
}

/// Windmill (friendship) graph: `t` triangles all sharing vertex 0.
/// `t` BCCs; 0 is the sole articulation point (t ≥ 2).
pub fn windmill(t: usize) -> Graph {
    let n = 1 + 2 * t;
    let mut el = EdgeList::new(n);
    for i in 0..t {
        let a = (1 + 2 * i) as V;
        let b = (2 + 2 * i) as V;
        el.push(0, a);
        el.push(0, b);
        el.push(a, b);
    }
    build_symmetric(&el)
}

/// Complete binary tree with `n` vertices (heap numbering). Every edge a
/// bridge; `n-1` BCCs.
pub fn binary_tree(n: usize) -> Graph {
    let mut el = EdgeList::new(n);
    for i in 1..n {
        el.push(((i - 1) / 2) as V, i as V);
    }
    build_symmetric(&el)
}

/// Ladder graph: two paths of length `len` rung-connected. One BCC (len ≥ 2).
pub fn ladder(len: usize) -> Graph {
    assert!(len >= 2);
    let n = 2 * len;
    let mut el = EdgeList::new(n);
    for i in 0..len {
        el.push((2 * i) as V, (2 * i + 1) as V); // rung
        if i + 1 < len {
            el.push((2 * i) as V, (2 * i + 2) as V);
            el.push((2 * i + 1) as V, (2 * i + 3) as V);
        }
    }
    build_symmetric(&el)
}

/// Wheel: cycle of `n-1` vertices plus a hub adjacent to all. One BCC (n ≥ 4).
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4);
    let mut el = EdgeList::new(n);
    for i in 1..n {
        el.push(0, i as V);
        let nxt = if i == n - 1 { 1 } else { i + 1 };
        el.push(i as V, nxt as V);
    }
    build_symmetric(&el)
}

/// The Petersen graph (3-regular, 3-connected): one BCC.
pub fn petersen() -> Graph {
    let outer: [(V, V); 5] = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
    let spokes: [(V, V); 5] = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
    let inner: [(V, V); 5] = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
    let mut el = EdgeList::new(10);
    for &(u, v) in outer.iter().chain(&spokes).chain(&inner) {
        el.push(u, v);
    }
    build_symmetric(&el)
}

/// Disjoint union of graphs (relabels each component's vertices into a
/// fresh id range). Used to test multi-CC handling.
pub fn disjoint_union(parts: &[&Graph]) -> Graph {
    let n: usize = parts.iter().map(|g| g.n()).sum();
    let mut el = EdgeList::new(n);
    let mut base = 0u32;
    for g in parts {
        for (u, v) in g.iter_edges() {
            el.push(base + u, base + v);
        }
        base += g.n() as u32;
    }
    build_symmetric(&el)
}

/// A chain of `c` cliques `K_k`, consecutive cliques sharing one cut vertex.
/// Exactly `c` BCCs; the shared vertices are the articulation points.
pub fn clique_chain(c: usize, k: usize) -> Graph {
    assert!(k >= 2 && c >= 1);
    let n = c * (k - 1) + 1;
    let mut el = EdgeList::new(n);
    for ci in 0..c {
        let base = ci * (k - 1);
        // Clique on vertices base .. base+k (inclusive endpoints share).
        for i in 0..k {
            for j in (i + 1)..k {
                el.push((base + i) as V, (base + j) as V);
            }
        }
    }
    build_symmetric(&el)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_right() {
        assert_eq!(path(5).m_undirected(), 4);
        assert_eq!(cycle(5).m_undirected(), 5);
        assert_eq!(star(6).m_undirected(), 5);
        assert_eq!(complete(6).m_undirected(), 15);
        assert_eq!(complete_bipartite(2, 3).m_undirected(), 6);
        assert_eq!(theta(1, 2, 3).m_undirected(), 2 + 3 + 4);
        assert_eq!(windmill(4).m_undirected(), 12);
        assert_eq!(binary_tree(7).m_undirected(), 6);
        assert_eq!(ladder(3).m_undirected(), 3 + 4);
        assert_eq!(wheel(5).m_undirected(), 8);
        assert_eq!(petersen().m_undirected(), 15);
        assert_eq!(clique_chain(3, 4).n(), 10);
        assert_eq!(clique_chain(3, 4).m_undirected(), 18);
    }

    #[test]
    fn all_symmetric_no_junk() {
        for g in [
            path(10),
            cycle(8),
            star(9),
            complete(7),
            complete_bipartite(3, 4),
            theta(0, 1, 5),
            barbell(4, 3),
            windmill(5),
            binary_tree(20),
            ladder(6),
            wheel(7),
            petersen(),
            clique_chain(4, 3),
        ] {
            assert!(g.is_symmetric());
            assert!(!g.has_self_loops());
            assert!(!g.has_multi_edges());
        }
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(4, 2);
        // 2 cliques of 4 + 1 intermediate bridge vertex.
        assert_eq!(g.n(), 9);
        assert_eq!(g.m_undirected(), 6 + 6 + 2);
        assert_eq!(g.degree(8), 2); // the intermediate vertex
    }

    #[test]
    fn disjoint_union_counts() {
        let g = disjoint_union(&[&cycle(3), &path(4)]);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m_undirected(), 3 + 3);
        // No cross edges.
        for u in 0..3u32 {
            for &v in g.neighbors(u) {
                assert!(v < 3);
            }
        }
    }

    #[test]
    fn theta_degrees() {
        let g = theta(2, 2, 2);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 3);
        for v in 2..8u32 {
            assert_eq!(g.degree(v), 2);
        }
    }
}
