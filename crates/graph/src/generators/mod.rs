//! Synthetic graph generators.
//!
//! These stand in for the paper's 27-graph evaluation suite (Tab. 2). The
//! suite spans five categories whose *discriminating property* for BCC
//! algorithms is diameter and edge density; each category has a generator
//! here producing the same regime:
//!
//! | paper category | generator | regime |
//! |---|---|---|
//! | social (YT/OK/LJ/TW/FT) | [`rmat::rmat`] | power-law, low diameter |
//! | web (GG/SD/CW/HL) | [`rmat::web_like`] | denser power-law + local cliques, low diameter |
//! | road (CA/USA/GE) | [`geometric::random_geometric`] | near-planar, avg degree ≈ 2–3, huge diameter |
//! | k-NN (HH5/CH5/GL*/COS5) | [`knn::knn`] | k-nearest-neighbor of uniform points, large diameter |
//! | synthetic (SQR/REC/SQR'/REC'/Chn) | [`grid::grid2d`], [`grid::grid2d_sampled`], [`classic::path`] | exact reproductions of the paper's family |
//!
//! All generators are **deterministic given a seed** and independent of
//! thread schedule: randomness is counter-based (`hash64(seed, index)`).
//!
//! [`classic`] additionally provides the small named graphs used as
//! correctness fixtures (theta graphs, barbells, windmills, …) whose BCC
//! structure is known in closed form.

pub mod classic;
pub mod geometric;
pub mod grid;
pub mod knn;
pub(crate) mod points;
pub mod rmat;

pub use classic::*;
pub use geometric::random_geometric;
pub use grid::{grid2d, grid2d_sampled};
pub use knn::knn;
pub use rmat::{rmat, web_like};
