//! Random geometric graphs — the road-network stand-in (CA/USA/GE).
//!
//! Road networks are near-planar with average degree ≈ 2–3 and diameter
//! Θ(√n). A random geometric graph slightly above its connectivity
//! threshold (`radius ≈ c·√(ln n / n)`) has exactly these properties, which
//! are what make BFS-based BCC baselines slow on the paper's road inputs.

use super::points::PointGrid;
use crate::builder::build_symmetric;
use crate::csr::Graph;
use crate::types::{EdgeList, V};
use rayon::prelude::*;

/// Random geometric graph: `n` uniform points, edge iff distance ≤ `radius`.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(n >= 1 && radius > 0.0);
    // Cell width = radius: neighbors live in the 3×3 cell block.
    let dim = ((1.0 / radius).floor() as usize).clamp(1, 4096);
    let xs: Vec<f64> = (0..n)
        .map(|i| {
            fastbcc_primitives::rng::to_unit_f64(fastbcc_primitives::rng::hash64_pair(
                seed,
                2 * i as u64,
            ))
        })
        .collect();
    let ys: Vec<f64> = (0..n)
        .map(|i| {
            fastbcc_primitives::rng::to_unit_f64(fastbcc_primitives::rng::hash64_pair(
                seed,
                2 * i as u64 + 1,
            ))
        })
        .collect();
    let pg = PointGrid::from_points(xs, ys, dim);
    let r2 = radius * radius;

    let edges: Vec<(V, V)> = (0..n)
        .into_par_iter()
        .fold(Vec::new, |mut acc: Vec<(V, V)>, i| {
            let (cx, cy) = pg.cell_xy(i);
            for r in 0..=1usize {
                pg.for_ring(cx, cy, r, |j| {
                    // Each pair once: only emit toward larger ids.
                    if (j as usize) > i && pg.dist2(i, j as usize) <= r2 {
                        acc.push((i as V, j));
                    }
                });
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    build_symmetric(&EdgeList { n, edges })
}

/// Radius targeting average degree ≈ 3.5 — the road-network regime.
///
/// Road graphs are *not* at the RGG connectivity threshold: they have
/// average degree 2–3, a giant component plus many fragments, and a large
/// share of bridges/articulation points (the paper's CA input has 381 366
/// BCCs over 1.97 M vertices). A degree-targeted radius reproduces all
/// three properties; the threshold radius (`≈ √(ln n / πn)`) would instead
/// give a ln(n)-degree, almost fully biconnected graph.
pub fn road_like_radius(n: usize) -> f64 {
    let n = n.max(2) as f64;
    (3.5 / (std::f64::consts::PI * n)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force edge set for verification.
    fn naive_edges(pg: &PointGrid, r2: f64) -> Vec<(V, V)> {
        let n = pg.xs.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if pg.dist2(i, j) <= r2 {
                    out.push((i as V, j as V));
                }
            }
        }
        out
    }

    #[test]
    fn matches_brute_force() {
        let n = 400;
        let radius = 0.08;
        let g = random_geometric(n, radius, 17);
        // Recreate identical points for the naive computation.
        let xs: Vec<f64> = (0..n)
            .map(|i| {
                fastbcc_primitives::rng::to_unit_f64(fastbcc_primitives::rng::hash64_pair(
                    17,
                    2 * i as u64,
                ))
            })
            .collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| {
                fastbcc_primitives::rng::to_unit_f64(fastbcc_primitives::rng::hash64_pair(
                    17,
                    2 * i as u64 + 1,
                ))
            })
            .collect();
        let dim = ((1.0 / radius).floor() as usize).clamp(1, 4096);
        let pg = PointGrid::from_points(xs, ys, dim);
        let mut want = naive_edges(&pg, radius * radius);
        want.sort_unstable();
        let mut got: Vec<(V, V)> = g.iter_edges().collect();
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn road_like_is_sparse_and_fragmented() {
        let n = 20_000;
        let g = random_geometric(n, road_like_radius(n), 23);
        let avg_deg = g.m() as f64 / n as f64;
        assert!((2.0..6.0).contains(&avg_deg), "avg degree {avg_deg}");
        assert!(g.is_symmetric());
        // Road regime: multiple components, not one biconnected blob.
        let cc = fastbcc_graph_cc_count(&g);
        assert!(cc > 10, "expected fragmented road-like graph, got {cc} CCs");
    }

    fn fastbcc_graph_cc_count(g: &Graph) -> usize {
        crate::stats::cc_count_seq(g)
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            random_geometric(500, 0.05, 3),
            random_geometric(500, 0.05, 3)
        );
    }

    #[test]
    fn single_point() {
        let g = random_geometric(1, 0.5, 0);
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
    }
}
