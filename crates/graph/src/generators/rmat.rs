//! R-MAT recursive-matrix generator (Chakrabarti–Zhan–Faloutsos) — the
//! standard power-law generator; stands in for the paper's social networks
//! (YT/OK/LJ/TW/FT), and with denser parameters plus planted local cliques
//! for its web crawls (GG/SD/CW/HL).
//!
//! Edges are generated independently (counter-based randomness), so the
//! generator is parallel and deterministic for a given seed.

use crate::builder::build_symmetric;
use crate::csr::Graph;
use crate::types::{EdgeList, V};
use fastbcc_primitives::pack::pack_map;
use fastbcc_primitives::rng::{hash64_pair, to_unit_f64};

/// R-MAT parameters: quadrant probabilities (a, b, c); d = 1 - a - b - c.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Per-level multiplicative noise amplitude (0 = none).
    pub noise: f64,
}

impl Default for RmatParams {
    /// Graph500 parameters: a=0.57, b=0.19, c=0.19 (d=0.05) with mild noise,
    /// yielding the skewed degree distribution of social networks.
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }
}

/// Generate one R-MAT endpoint pair for edge index `i`.
fn rmat_edge(scale: u32, seed: u64, i: u64, p: RmatParams) -> (V, V) {
    let mut u = 0u64;
    let mut v = 0u64;
    for level in 0..scale {
        let h = hash64_pair(seed, i * 64 + level as u64);
        let r = to_unit_f64(h);
        // Per-level noise keeps the distribution from being too regular.
        let jitter = 1.0 + p.noise * (to_unit_f64(hash64_pair(h, level as u64)) - 0.5);
        let a = p.a * jitter;
        let b = p.b * jitter;
        let c = p.c * jitter;
        let total = a + b + c + (1.0 - p.a - p.b - p.c) * jitter;
        let r = r * total;
        u <<= 1;
        v <<= 1;
        if r < a {
            // top-left
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as V, v as V)
}

/// R-MAT graph on `2^scale` vertices with `m_target` undirected edge
/// samples (self-loops and duplicates are removed, so the final count is a
/// bit lower — as with the real datasets).
pub fn rmat_with(scale: u32, m_target: usize, seed: u64, p: RmatParams) -> Graph {
    assert!(scale <= 31);
    let n = 1usize << scale;
    let edges = pack_map(m_target, |_| true, |i| rmat_edge(scale, seed, i as u64, p));
    build_symmetric(&EdgeList { n, edges })
}

/// Social-network-like R-MAT with Graph500 defaults.
pub fn rmat(scale: u32, m_target: usize, seed: u64) -> Graph {
    rmat_with(scale, m_target, seed, RmatParams::default())
}

/// Web-crawl-like graph: a denser, slightly less skewed R-MAT core plus
/// planted "site" cliques (pages of one site link each other densely),
/// echoing the large-BCC, higher-local-density structure of web graphs.
pub fn web_like(scale: u32, m_target: usize, seed: u64) -> Graph {
    let n = 1usize << scale;
    let params = RmatParams {
        a: 0.45,
        b: 0.22,
        c: 0.22,
        noise: 0.05,
    };
    let mut edges = pack_map(
        m_target,
        |_| true,
        |i| rmat_edge(scale, seed, i as u64, params),
    );
    // Plant cliques: sites of 4–12 consecutive page ids, covering ~30% of
    // the vertices, every site fully linked internally.
    let mut v = 0usize;
    let mut k = 0u64;
    while v + 12 < n {
        let h = hash64_pair(seed ^ 0xC11C_0E5, k);
        k += 1;
        let size = 4 + (h % 9) as usize;
        if h % 10 < 3 {
            for i in 0..size {
                for j in (i + 1)..size {
                    edges.push(((v + i) as V, (v + j) as V));
                }
            }
        }
        v += size;
    }
    build_symmetric(&EdgeList { n, edges })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(10, 5000, 1);
        let b = rmat(10, 5000, 1);
        assert_eq!(a, b);
        let c = rmat(10, 5000, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(12, 40_000, 3);
        assert_eq!(g.n(), 4096);
        // Dedup/self-loop removal costs some edges but most survive.
        assert!(g.m_undirected() > 25_000, "m = {}", g.m_undirected());
        assert!(g.is_symmetric());
        assert!(!g.has_self_loops());
    }

    #[test]
    fn rmat_degrees_are_skewed() {
        let g = rmat(12, 40_000, 4);
        let max_deg = (0..g.n() as V).map(|v| g.degree(v)).max().unwrap();
        let avg = g.m() as f64 / g.n() as f64;
        // Power-law: hub degree far above average.
        assert!(
            max_deg as f64 > 10.0 * avg,
            "max {max_deg} vs avg {avg} — not skewed"
        );
    }

    #[test]
    fn web_like_contains_dense_pockets() {
        let g = web_like(12, 30_000, 5);
        assert!(g.is_symmetric());
        // Triangle count per edge in planted cliques is high; cheap proxy:
        // some vertex has ≥ 3 mutually adjacent neighbors.
        let mut found = false;
        'outer: for v in 0..g.n() as V {
            let nb = g.neighbors(v);
            if nb.len() < 3 {
                continue;
            }
            for i in 0..nb.len().min(8) {
                for j in (i + 1)..nb.len().min(8) {
                    if g.has_edge(nb[i], nb[j]) {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "no triangles found in web-like graph");
    }

    #[test]
    fn endpoints_in_range() {
        let g = rmat(8, 2000, 6);
        assert!(g.arcs().iter().all(|&v| (v as usize) < g.n()));
    }
}
