//! Compressed sparse row (CSR) graph representation.
//!
//! The standard layout for static graph algorithms: an `offsets` array of
//! length `n+1` and a flat `edges` array of length `m` (directed arc count;
//! for the undirected graphs used by BCC every edge is stored twice).
//! Neighbor lists of a vertex are contiguous and sorted, enabling cache-
//! friendly scans and binary-searched membership tests.

use crate::types::{NONE, V};

/// A static graph in CSR form. Construct via [`crate::builder`] functions
/// or [`Graph::from_raw_parts`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    edges: Vec<V>,
}

impl Graph {
    /// Build from raw CSR arrays. Panics if the invariants don't hold
    /// (monotone offsets, ids in range).
    pub fn from_raw_parts(offsets: Vec<usize>, edges: Vec<V>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n+1 >= 1");
        assert_eq!(
            *offsets.last().unwrap(),
            edges.len(),
            "offsets must end at m"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        let n = offsets.len() - 1;
        assert!(
            edges.iter().all(|&v| (v as usize) < n),
            "edge endpoint out of range"
        );
        let g = Self { offsets, edges };
        debug_assert!(
            g.has_sorted_adjacency(),
            "neighbor lists must be sorted ascending (see has_sorted_adjacency)"
        );
        g
    }

    /// Dissolve into the raw CSR arrays, handing their allocations back to
    /// the caller. Inverse of [`Graph::from_raw_parts`]; lets scratch-pooled
    /// callers (the core engine's `Workspace`) rebuild a graph each solve
    /// without reallocating.
    pub fn into_raw_parts(self) -> (Vec<usize>, Vec<V>) {
        (self.offsets, self.edges)
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed arcs (twice the undirected edge count for
    /// symmetric graphs).
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Number of undirected edges, assuming symmetric storage.
    #[inline]
    pub fn m_undirected(&self) -> usize {
        self.edges.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: V) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbor slice of `v` (sorted ascending).
    #[inline]
    pub fn neighbors(&self, v: V) -> &[V] {
        &self.edges[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// CSR offsets (length `n+1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Flat arc array (length `m`).
    #[inline]
    pub fn arcs(&self) -> &[V] {
        &self.edges
    }

    /// The arc index range of `v`'s neighbor list.
    #[inline]
    pub fn arc_range(&self, v: V) -> std::ops::Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Membership test via binary search (neighbor lists are sorted —
    /// see [`has_sorted_adjacency`](Self::has_sorted_adjacency)).
    pub fn has_edge(&self, u: V, v: V) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// True if every neighbor list is sorted ascending (duplicates
    /// allowed). This is an **invariant** of every graph the builders,
    /// delta layer, and loaders produce, and two consumers rely on it
    /// for correctness: [`has_edge`](Self::has_edge)'s binary search and
    /// the difference encoder of
    /// [`CompressedGraph::from_graph`](crate::compressed::CompressedGraph::from_graph)
    /// (non-negative gaps). [`from_raw_parts`](Self::from_raw_parts)
    /// debug-asserts it; callers constructing CSRs by hand must sort
    /// each list.
    pub fn has_sorted_adjacency(&self) -> bool {
        use fastbcc_primitives::reduce::all;
        all(self.n(), |u| {
            self.neighbors(u as V).windows(2).all(|w| w[0] <= w[1])
        })
    }

    /// Iterate all directed arcs as `(src, dst)` pairs (sequential).
    pub fn iter_arcs(&self) -> impl Iterator<Item = (V, V)> + '_ {
        (0..self.n() as V).flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterate undirected edges once each (`u < v`), assuming symmetry.
    pub fn iter_edges(&self) -> impl Iterator<Item = (V, V)> + '_ {
        self.iter_arcs().filter(|&(u, v)| u < v)
    }

    /// Verify symmetric storage: `(u,v)` present iff `(v,u)` present.
    /// `O(m log d)`; intended for tests and debug assertions.
    pub fn is_symmetric(&self) -> bool {
        use fastbcc_primitives::reduce::all;
        all(self.n(), |u| {
            self.neighbors(u as V)
                .iter()
                .all(|&v| self.has_edge(v, u as V))
        })
    }

    /// True if some neighbor list contains `v` itself.
    pub fn has_self_loops(&self) -> bool {
        (0..self.n()).any(|u| self.neighbors(u as V).contains(&(u as V)))
    }

    /// True if some neighbor list has adjacent duplicates (lists are sorted,
    /// so this detects all multi-edges).
    pub fn has_multi_edges(&self) -> bool {
        (0..self.n()).any(|u| self.neighbors(u as V).windows(2).any(|w| w[0] == w[1]))
    }

    /// Heap bytes used by the CSR arrays (for space reporting).
    pub fn bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.edges.len() * std::mem::size_of::<V>()
    }

    /// Heap bytes *reserved* by the CSR arrays (capacity, not length).
    ///
    /// Pooled callers ([`crate::delta::DeltaScratch`]) track this instead
    /// of [`bytes`](Self::bytes): recycled buffers keep slack capacity, and
    /// accounting by length would make allocation totals oscillate as the
    /// larger ping-pong buffer moves between the pool and the live graph.
    pub fn capacity_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.edges.capacity() * std::mem::size_of::<V>()
    }

    /// The vertex with maximum degree, or [`NONE`] for an empty graph.
    pub fn max_degree_vertex(&self) -> V {
        if self.n() == 0 {
            return NONE;
        }
        (0..self.n() as V).max_by_key(|&v| self.degree(v)).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle plus a pendant vertex: 0-1-2-0, 2-3.
    fn paw() -> Graph {
        // arcs sorted per vertex
        Graph::from_raw_parts(vec![0, 2, 4, 7, 8], vec![1, 2, 0, 2, 0, 1, 3, 2])
    }

    #[test]
    fn basic_accessors() {
        let g = paw();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 8);
        assert_eq!(g.m_undirected(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 3));
        assert!(g.is_symmetric());
        assert!(!g.has_self_loops());
        assert!(!g.has_multi_edges());
        assert_eq!(g.max_degree_vertex(), 2);
    }

    #[test]
    fn edge_iterators() {
        let g = paw();
        let arcs: Vec<_> = g.iter_arcs().collect();
        assert_eq!(arcs.len(), 8);
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert!(g.is_symmetric());
        let g0 = Graph::empty(0);
        assert_eq!(g0.n(), 0);
        assert_eq!(g0.max_degree_vertex(), NONE);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn bad_offsets_panic() {
        Graph::from_raw_parts(vec![0, 2, 1, 2], vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        Graph::from_raw_parts(vec![0, 1], vec![5]);
    }

    #[test]
    fn asymmetric_detected() {
        // arc 0->1 without 1->0
        let g = Graph::from_raw_parts(vec![0, 1, 1], vec![1]);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn loops_and_multi_detected() {
        let g = Graph::from_raw_parts(vec![0, 1], vec![0]);
        assert!(g.has_self_loops());
        let g = Graph::from_raw_parts(vec![0, 2, 4], vec![1, 1, 0, 0]);
        assert!(g.has_multi_edges());
    }
}
