//! Batch edge deltas over CSR graphs.
//!
//! [`apply_delta`] merges per-vertex adjacency changes into a fresh CSR in
//! one `O(n + m + b)` pass (`b` = batch size), instead of round-tripping
//! through an edge list and the full builder. All output buffers come from
//! a pooled [`DeltaScratch`], and the superseded graph's allocations are
//! handed back via [`DeltaScratch::recycle`], so a warm add/delete cycle
//! allocates nothing: the two CSR buffers ping-pong between the scratch
//! and the live graph.
//!
//! The merge is tolerant by construction: deletions of absent edges are
//! ignored, duplicate/present additions are deduplicated, and self-loops
//! never enter the output — the same preprocessing contract as
//! [`crate::builder`].

use crate::csr::Graph;
use crate::types::V;

/// An undirected edge batch: edges to insert and edges to remove.
///
/// Endpoint order within a pair does not matter; both directed arcs are
/// produced internally. A pair appearing in both lists cancels to a no-op
/// when the edge was already present (delete wins first, then re-add).
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    /// Undirected edges to insert (absent ones; present ones are no-ops).
    pub adds: Vec<(V, V)>,
    /// Undirected edges to remove (present ones; absent ones are no-ops).
    pub dels: Vec<(V, V)>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Delta from borrowed slices.
    pub fn from_slices(adds: &[(V, V)], dels: &[(V, V)]) -> Self {
        Self {
            adds: adds.to_vec(),
            dels: dels.to_vec(),
        }
    }

    /// Total number of undirected edge changes requested.
    pub fn len(&self) -> usize {
        self.adds.len() + self.dels.len()
    }

    /// True when the delta requests no changes.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.dels.is_empty()
    }
}

/// Pooled buffers for [`apply_delta`]: staged directed arcs for both sides
/// of the batch, plus the output CSR arrays of the *previous* application
/// (returned via [`DeltaScratch::recycle`]), reused for the next one.
#[derive(Default)]
pub struct DeltaScratch {
    add_arcs: Vec<(V, V)>,
    del_arcs: Vec<(V, V)>,
    offsets: Vec<usize>,
    arcs: Vec<V>,
}

impl DeltaScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hand a superseded graph's CSR allocations back to the pool, making
    /// them the output buffers of the next [`apply_delta`] call.
    pub fn recycle(&mut self, g: Graph) {
        let (offsets, arcs) = g.into_raw_parts();
        if offsets.capacity() > self.offsets.capacity() {
            self.offsets = offsets;
        }
        if arcs.capacity() > self.arcs.capacity() {
            self.arcs = arcs;
        }
    }

    /// Heap bytes currently held by the pooled buffers.
    pub fn heap_bytes(&self) -> usize {
        self.add_arcs.capacity() * std::mem::size_of::<(V, V)>()
            + self.del_arcs.capacity() * std::mem::size_of::<(V, V)>()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.arcs.capacity() * std::mem::size_of::<V>()
    }
}

/// Stage both directed arcs of every undirected pair, dropping self-loops,
/// then sort so per-vertex runs are contiguous and ascending.
fn stage_arcs(pairs: &[(V, V)], out: &mut Vec<(V, V)>) {
    out.clear();
    out.reserve(pairs.len() * 2);
    for &(u, v) in pairs {
        if u != v {
            out.push((u, v));
            out.push((v, u));
        }
    }
    out.sort_unstable();
    out.dedup();
}

/// Apply an edge batch to `g`, producing the updated graph.
///
/// The output preserves every CSR invariant (sorted neighbor lists, no
/// duplicates, no self-loops, symmetric storage for symmetric inputs).
/// Output buffers are drawn from `scratch`; pass the superseded `g` back
/// through [`DeltaScratch::recycle`] afterwards to close the pooling loop.
pub fn apply_delta(g: &Graph, delta: &GraphDelta, scratch: &mut DeltaScratch) -> Graph {
    let n = g.n();
    stage_arcs(&delta.adds, &mut scratch.add_arcs);
    stage_arcs(&delta.dels, &mut scratch.del_arcs);

    let mut offsets = std::mem::take(&mut scratch.offsets);
    let mut arcs = std::mem::take(&mut scratch.arcs);
    offsets.clear();
    offsets.reserve(n + 1);
    arcs.clear();
    // Upper bound on the output arc count; reserving it up front keeps the
    // per-vertex pushes realloc-free even when the batch grows the graph.
    arcs.reserve(g.m() + scratch.add_arcs.len());

    let (mut ai, mut di) = (0usize, 0usize);
    offsets.push(0);
    for v in 0..n as V {
        // Per-vertex runs of the staged (sorted) arc lists.
        let a_start = ai;
        while ai < scratch.add_arcs.len() && scratch.add_arcs[ai].0 == v {
            ai += 1;
        }
        let d_start = di;
        while di < scratch.del_arcs.len() && scratch.del_arcs[di].0 == v {
            di += 1;
        }
        let add_run = &scratch.add_arcs[a_start..ai];
        let del_run = &scratch.del_arcs[d_start..di];

        // Merge `old \ dels` with `adds` (both ascending), deduplicating.
        let old = g.neighbors(v);
        let (mut oi, mut aj, mut dj) = (0usize, 0usize, 0usize);
        while oi < old.len() || aj < add_run.len() {
            let next_old = if oi < old.len() { Some(old[oi]) } else { None };
            let next_add = if aj < add_run.len() {
                Some(add_run[aj].1)
            } else {
                None
            };
            let w = match (next_old, next_add) {
                (Some(o), Some(a)) if o <= a => {
                    oi += 1;
                    if o == a {
                        aj += 1;
                    }
                    o
                }
                (Some(_), Some(a)) => {
                    aj += 1;
                    a
                }
                (Some(o), None) => {
                    oi += 1;
                    o
                }
                (None, Some(a)) => {
                    aj += 1;
                    a
                }
                (None, None) => unreachable!(),
            };
            // Deletions strike survivors from the old list; advance the
            // del cursor to `w` and drop `w` when it matches — unless the
            // add side also listed it (delete-then-re-add ⇒ "present").
            while dj < del_run.len() && del_run[dj].1 < w {
                dj += 1;
            }
            let deleted = dj < del_run.len() && del_run[dj].1 == w;
            let re_added = next_add == Some(w);
            if !deleted || re_added {
                arcs.push(w);
            }
        }
        offsets.push(arcs.len());
    }
    Graph::from_raw_parts(offsets, arcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn graph(n: usize, edges: &[(V, V)]) -> Graph {
        from_edges(n, edges)
    }

    #[test]
    fn add_and_delete_roundtrip() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3)]);
        let d = GraphDelta {
            adds: vec![(3, 4), (0, 2)],
            dels: vec![(1, 2)],
        };
        let mut s = DeltaScratch::new();
        let g2 = apply_delta(&g, &d, &mut s);
        let want = graph(5, &[(0, 1), (2, 3), (3, 4), (0, 2)]);
        assert_eq!(g2, want);
        assert!(g2.is_symmetric());
    }

    #[test]
    fn tolerant_of_noise() {
        let g = graph(4, &[(0, 1), (1, 2)]);
        let d = GraphDelta {
            // duplicate adds, an already-present add, a self-loop, and a
            // delete of an absent edge
            adds: vec![(2, 3), (3, 2), (0, 1), (1, 1)],
            dels: vec![(0, 3)],
        };
        let mut s = DeltaScratch::new();
        let g2 = apply_delta(&g, &d, &mut s);
        assert_eq!(g2, graph(4, &[(0, 1), (1, 2), (2, 3)]));
    }

    #[test]
    fn delete_then_readd_cancels() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let d = GraphDelta {
            adds: vec![(0, 1)],
            dels: vec![(0, 1)],
        };
        let g2 = apply_delta(&g, &d, &mut DeltaScratch::new());
        assert_eq!(g2, g);
    }

    #[test]
    fn empty_delta_copies() {
        let g = graph(4, &[(0, 1), (2, 3)]);
        let g2 = apply_delta(&g, &GraphDelta::new(), &mut DeltaScratch::new());
        assert_eq!(g2, g);
    }

    #[test]
    fn recycle_makes_warm_applies_allocation_free() {
        let g0 = graph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut s = DeltaScratch::new();
        let flip = |i: u64| GraphDelta {
            adds: vec![((i % 5) as V, ((i + 1) % 5) as V + 1)],
            dels: vec![(((i + 2) % 5) as V, ((i + 3) % 5) as V + 1)],
        };
        // Warm up until both ping-pong buffers reach their steady-state
        // capacities, then require every later apply to stay put.
        let mut cur = g0;
        for i in 0..6u64 {
            let next = apply_delta(&cur, &flip(i), &mut s);
            s.recycle(std::mem::replace(&mut cur, next));
        }
        // The two CSR buffers ping-pong between scratch and the live
        // graph, so `heap_bytes` may oscillate with period 2; the warm
        // guarantee is that the high-water mark never rises.
        let mut high = s.heap_bytes();
        let next = apply_delta(&cur, &flip(6), &mut s);
        s.recycle(std::mem::replace(&mut cur, next));
        high = high.max(s.heap_bytes());
        for i in 7..11u64 {
            let next = apply_delta(&cur, &flip(i), &mut s);
            s.recycle(std::mem::replace(&mut cur, next));
            assert!(s.heap_bytes() <= high, "warm apply must not grow scratch");
        }
        assert!(cur.is_symmetric());
    }

    #[test]
    fn delta_matches_builder_on_random_batches() {
        use crate::generators::rmat;
        let g0 = rmat(8, 600, 7);
        let mut s = DeltaScratch::new();
        let mut cur = g0.clone();
        let mut live: Vec<(V, V)> = cur.iter_edges().collect();
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..10 {
            let n = cur.n() as u64;
            let mut d = GraphDelta::new();
            // Deletions first (drawn from the live set), then additions of
            // genuinely new pairs (normalized u < v, not re-adding a pair
            // deleted in this same batch — those semantics are exercised by
            // `delete_then_readd_cancels`).
            for _ in 0..8 {
                if !live.is_empty() {
                    let i = (rng() % live.len() as u64) as usize;
                    d.dels.push(live.swap_remove(i));
                }
            }
            for _ in 0..8 {
                let (a, b) = ((rng() % n) as V, (rng() % n) as V);
                let (u, v) = (a.min(b), a.max(b));
                if u != v
                    && !cur.has_edge(u, v)
                    && !d.adds.contains(&(u, v))
                    && !d.dels.iter().any(|&(x, y)| (x.min(y), x.max(y)) == (u, v))
                {
                    d.adds.push((u, v));
                    live.push((u, v));
                }
            }
            let next = apply_delta(&cur, &d, &mut s);
            let want = from_edges(cur.n(), &live);
            assert_eq!(next, want);
            s.recycle(std::mem::replace(&mut cur, next));
        }
    }
}
