//! Parallel CSR construction from edge lists.
//!
//! Pipeline (all phases parallel, `O(m)` work, `O(log m)` span):
//!
//! 1. symmetrize: every undirected edge becomes two directed arcs;
//! 2. drop self-loops;
//! 3. radix-sort arcs by `(src, dst)` (two stable passes);
//! 4. pack out duplicate arcs;
//! 5. derive offsets from the sorted survivors.
//!
//! This mirrors the preprocessing the paper applies to its inputs
//! (symmetrization, dedup) so all algorithms see simple undirected graphs.

use crate::csr::Graph;
use crate::types::{EdgeList, V};
use fastbcc_primitives::pack::{filter_slice, pack_map};
use fastbcc_primitives::par::par_for;
use fastbcc_primitives::slice::{uninit_vec, UnsafeSlice};
use fastbcc_primitives::sort::{offsets_from_sorted, radix_sort_by};

/// Build a symmetric, loop-free, duplicate-free CSR graph from an edge list.
pub fn build_symmetric(el: &EdgeList) -> Graph {
    let n = el.n;
    assert!(
        n < u32::MAX as usize,
        "vertex count must fit in u32 with NONE reserved"
    );
    if el.edges.is_empty() {
        return Graph::empty(n);
    }

    // 1+2: symmetrize and drop loops in one scatter.
    let loops =
        fastbcc_primitives::reduce::count(el.edges.len(), |i| el.edges[i].0 == el.edges[i].1);
    let keep = el.edges.len() - loops;
    // SAFETY: the scatter below writes slots `2j` and `2j+1` for every
    // surviving edge `j`, covering all of `0..2*keep` before use.
    let mut arcs: Vec<(V, V)> = unsafe { uninit_vec(2 * keep) };
    {
        // Compute destinations for survivors via pack of indices, then scatter
        // both directions.
        let idx = fastbcc_primitives::pack::pack_index_usize(el.edges.len(), |i| {
            el.edges[i].0 != el.edges[i].1
        });
        let view = UnsafeSlice::new(&mut arcs);
        par_for(idx.len(), |j| {
            let (u, v) = el.edges[idx[j]];
            // SAFETY: slots 2j and 2j+1 are owned by iteration j.
            unsafe {
                view.write(2 * j, (u, v));
                view.write(2 * j + 1, (v, u));
            }
        });
    }

    from_arcs_dedup(n, arcs)
}

/// Build a CSR graph from directed arcs (already containing both directions
/// if symmetry is intended). Deduplicates and drops self-loops.
pub fn from_arcs_dedup(n: usize, arcs: Vec<(V, V)>) -> Graph {
    if arcs.is_empty() {
        return Graph::empty(n);
    }
    let no_loops = filter_slice(&arcs, |&(u, v)| u != v);
    // 3: stable radix sorts: by dst, then by src => lexicographic (src, dst).
    let max_id = (n.saturating_sub(1)) as u64;
    let by_dst = radix_sort_by(&no_loops, max_id, |&(_, v)| v as u64);
    let sorted = radix_sort_by(&by_dst, max_id, |&(u, _)| u as u64);

    // 4: drop duplicates (adjacent after the sort).
    let deduped: Vec<(V, V)> = pack_map(
        sorted.len(),
        |i| i == 0 || sorted[i] != sorted[i - 1],
        |i| sorted[i],
    );

    // 5: offsets + flat arc targets.
    let offsets = offsets_from_sorted(&deduped, n, |&(u, _)| u as usize);
    // SAFETY: the copy below writes every index before use.
    let mut flat: Vec<V> = unsafe { uninit_vec(deduped.len()) };
    {
        let view = UnsafeSlice::new(&mut flat);
        // SAFETY: one write per distinct index `i` — disjoint.
        par_for(deduped.len(), |i| unsafe { view.write(i, deduped[i].1) });
    }
    Graph::from_raw_parts(offsets, flat)
}

/// Convenience: build from a plain `(u, v)` slice.
pub fn from_edges(n: usize, edges: &[(V, V)]) -> Graph {
    build_symmetric(&EdgeList {
        n,
        edges: edges.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_paw_graph() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 8);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert!(g.is_symmetric());
    }

    #[test]
    fn dedups_and_drops_loops() {
        let g = from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 1), (2, 2), (1, 2)]);
        assert_eq!(g.m_undirected(), 2); // {0,1}, {1,2}
        assert!(!g.has_self_loops());
        assert!(!g.has_multi_edges());
        assert!(g.is_symmetric());
    }

    #[test]
    fn empty_and_isolated_vertices() {
        let g = from_edges(5, &[]);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        let g = from_edges(5, &[(0, 4)]);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(4), 1);
    }

    #[test]
    fn neighbor_lists_sorted() {
        let g = from_edges(6, &[(3, 5), (3, 1), (3, 4), (3, 0), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4, 5]);
    }

    #[test]
    fn large_random_build_is_consistent() {
        use fastbcc_primitives::rng::Rng;
        let mut r = Rng::new(21);
        let n = 10_000usize;
        let m = 60_000usize;
        let edges: Vec<(V, V)> = (0..m).map(|_| (r.index(n) as V, r.index(n) as V)).collect();
        let g = from_edges(n, &edges);
        assert!(g.is_symmetric());
        assert!(!g.has_self_loops());
        assert!(!g.has_multi_edges());
        // Every non-loop input edge must be present.
        for &(u, v) in edges.iter().take(500) {
            if u != v {
                assert!(g.has_edge(u, v), "missing edge {u}-{v}");
                assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn from_arcs_dedup_directed_input() {
        // Input arcs deliberately asymmetric; builder keeps them as-is
        // (minus dupes/loops) — symmetry is the caller's contract.
        let g = from_arcs_dedup(3, vec![(0, 1), (0, 1), (1, 2), (2, 2)]);
        assert_eq!(g.m(), 2);
        assert!(!g.is_symmetric());
    }
}
