//! # fastbcc-graph
//!
//! Graph substrate for the FAST-BCC reproduction: a compressed-sparse-row
//! (CSR) representation with a parallel builder, the synthetic generator
//! suite standing in for the paper's 27-graph benchmark collection, graph
//! statistics (approximate diameter, degree distributions), vertex
//! relabeling, and a simple binary/text graph format for caching generated
//! inputs.
//!
//! Algorithms consume graphs through the [`view::GraphView`] trait rather
//! than the flat [`Graph`] struct, so three backends interchange freely:
//! the flat CSR, the Ligra+/GBBS-style block-compressed
//! [`CompressedGraph`] (difference-sorted varint blocks decoded per block
//! inside the edgeMap hot loops — see [`compressed`]), and the zero-copy
//! [`MappedGraph`] returned by [`load_snapshot`], which `mmap`s a
//! validated on-disk snapshot of either backend without copying it into
//! RAM (see [`mmap`]).
//!
//! Conventions:
//!
//! * vertices are dense `u32` ids (`0..n`), [`types::NONE`] is the sentinel;
//! * all BCC algorithms operate on **undirected** graphs stored
//!   symmetrically (each edge appears as two directed arcs);
//! * builders deduplicate parallel edges and drop self-loops, mirroring the
//!   paper's preprocessing ("for directed graphs, we symmetrize them").

pub mod builder;
pub mod compressed;
pub mod csr;
pub mod delta;
pub mod generators;
pub mod io;
pub mod mmap;
pub mod permute;
pub mod stats;
pub mod types;
pub mod view;

pub use compressed::CompressedGraph;
pub use csr::Graph;
pub use delta::{apply_delta, DeltaScratch, GraphDelta};
pub use mmap::{load_snapshot, save_snapshot, save_snapshot_compressed, MappedGraph};
pub use types::{EdgeList, NONE, V};
pub use view::{CsrView, GraphView};
