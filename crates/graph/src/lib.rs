//! # fastbcc-graph
//!
//! Graph substrate for the FAST-BCC reproduction: a compressed-sparse-row
//! (CSR) representation with a parallel builder, the synthetic generator
//! suite standing in for the paper's 27-graph benchmark collection, graph
//! statistics (approximate diameter, degree distributions), vertex
//! relabeling, and a simple binary/text graph format for caching generated
//! inputs.
//!
//! Conventions:
//!
//! * vertices are dense `u32` ids (`0..n`), [`types::NONE`] is the sentinel;
//! * all BCC algorithms operate on **undirected** graphs stored
//!   symmetrically (each edge appears as two directed arcs);
//! * builders deduplicate parallel edges and drop self-loops, mirroring the
//!   paper's preprocessing ("for directed graphs, we symmetrize them").

pub mod builder;
pub mod csr;
pub mod delta;
pub mod generators;
pub mod io;
pub mod permute;
pub mod stats;
pub mod types;

pub use csr::Graph;
pub use delta::{apply_delta, DeltaScratch, GraphDelta};
pub use types::{EdgeList, NONE, V};
