//! Graph serialization: a compact binary format for caching generated
//! benchmark inputs, plus the PBBS-style text adjacency format for
//! interoperability with the paper's C++ artifacts.

use crate::csr::Graph;
use crate::types::V;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"FBCCGRv1";

/// Write `g` in the binary format (magic, n, m, offsets as u64, arcs as u32).
pub fn save_binary(g: &Graph, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(g.n() as u64).to_le_bytes())?;
    w.write_all(&(g.m() as u64).to_le_bytes())?;
    for &o in g.offsets() {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &a in g.arcs() {
        w.write_all(&a.to_le_bytes())?;
    }
    w.flush()
}

/// Read a graph written by [`save_binary`].
pub fn load_binary(path: &Path) -> io::Result<Graph> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    let mut arcs = vec![0 as V; m];
    let mut buf = vec![0u8; m * 4];
    r.read_exact(&mut buf)?;
    for (i, c) in buf.chunks_exact(4).enumerate() {
        arcs[i] = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
    }
    Ok(Graph::from_raw_parts(offsets, arcs))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Write the PBBS "AdjacencyGraph" text format used by the paper's suite.
pub fn save_adjacency_text(g: &Graph, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "AdjacencyGraph")?;
    writeln!(w, "{}", g.n())?;
    writeln!(w, "{}", g.m())?;
    for &o in &g.offsets()[..g.n()] {
        writeln!(w, "{o}")?;
    }
    for &a in g.arcs() {
        writeln!(w, "{a}")?;
    }
    w.flush()
}

/// Read the PBBS "AdjacencyGraph" text format.
pub fn load_adjacency_text(path: &Path) -> io::Result<Graph> {
    let r = BufReader::new(File::open(path)?);
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty file"))??;
    if header.trim() != "AdjacencyGraph" {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad header"));
    }
    let mut next_usize = |what: &str| -> io::Result<usize> {
        loop {
            let line = lines.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("missing {what}"))
            })??;
            let t = line.trim();
            if !t.is_empty() {
                return t
                    .parse::<usize>()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
            }
        }
    };
    let n = next_usize("n")?;
    let m = next_usize("m")?;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..n {
        offsets.push(next_usize("offset")?);
    }
    offsets.push(m);
    let mut arcs = Vec::with_capacity(m);
    for _ in 0..m {
        arcs.push(next_usize("arc")? as V);
    }
    Ok(Graph::from_raw_parts(offsets, arcs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fastbcc_io_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn binary_roundtrip() {
        let g = windmill(13);
        let p = tmp("bin");
        save_binary(&g, &p).unwrap();
        let h = load_binary(&p).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn text_roundtrip() {
        let g = barbell(4, 3);
        let p = tmp("txt");
        save_adjacency_text(&g, &p).unwrap();
        let h = load_adjacency_text(&p).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::empty(4);
        let p = tmp("empty");
        save_binary(&g, &p).unwrap();
        assert_eq!(load_binary(&p).unwrap(), g);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let p = tmp("junk");
        std::fs::write(&p, b"NOTAGRAPH-file").unwrap();
        assert!(load_binary(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
