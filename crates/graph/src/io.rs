//! Graph serialization: a compact binary format for caching generated
//! benchmark inputs, plus the PBBS-style text adjacency format for
//! interoperability with the paper's C++ artifacts.

use crate::csr::Graph;
use crate::types::V;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"FBCCGRv1";

/// Write `g` in the binary format (magic, n, m, offsets as u64, arcs as u32).
pub fn save_binary(g: &Graph, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(g.n() as u64).to_le_bytes())?;
    w.write_all(&(g.m() as u64).to_le_bytes())?;
    for &o in g.offsets() {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &a in g.arcs() {
        w.write_all(&a.to_le_bytes())?;
    }
    w.flush()
}

/// `InvalidData` error with a formatted message.
fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Read a graph written by [`save_binary`].
///
/// The header and payload are **fully validated** — the loader treats the
/// file as untrusted input. A header whose `n`/`m` does not match the file
/// length (so an attacker-sized count can never drive a huge
/// pre-reservation), a size computation that would overflow, non-monotone
/// offsets, offsets not ending at `m`, or an arc id `>= n` all return
/// [`io::ErrorKind::InvalidData`] instead of aborting on allocation
/// failure or panicking inside [`Graph::from_raw_parts`].
pub fn load_binary(path: &Path) -> io::Result<Graph> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    let n64 = read_u64(&mut r)?;
    let m64 = read_u64(&mut r)?;
    // Vertex ids are u32 with u32::MAX reserved as NONE.
    if n64 >= u32::MAX as u64 {
        return Err(bad(format!("vertex count {n64} exceeds the u32 id space")));
    }
    // The payload sizes implied by the header must match the actual file
    // length exactly: this both detects truncation/corruption and caps
    // every allocation below by what the file really holds.
    let offsets_bytes = (n64 + 1)
        .checked_mul(8)
        .ok_or_else(|| bad("offset table size overflows"))?;
    let arcs_bytes = m64
        .checked_mul(4)
        .ok_or_else(|| bad("arc table size overflows"))?;
    let want_len = offsets_bytes
        .checked_add(arcs_bytes)
        .and_then(|b| b.checked_add(24)) // magic + n + m
        .ok_or_else(|| bad("header sizes overflow"))?;
    if want_len != file_len {
        return Err(bad(format!(
            "file length {file_len} does not match header (n={n64}, m={m64} need {want_len})"
        )));
    }
    // Everything below is validated in u64 *before* any usize cast, so a
    // 32-bit host truncating a 2^32+k value can never smuggle it past the
    // checks (the casts are then bounded by m64, itself bounded here).
    if m64 > usize::MAX as u64 / 4 {
        return Err(bad(format!("arc count {m64} exceeds the address space")));
    }
    let (n, m) = (n64 as usize, m64 as usize);

    let mut offsets = Vec::with_capacity(n + 1);
    let mut prev = 0u64;
    for i in 0..=n {
        let o = read_u64(&mut r)?;
        if i == 0 && o != 0 {
            return Err(bad(format!("first offset is {o}, expected 0")));
        }
        if o < prev {
            return Err(bad(format!("offset {o} at index {i} decreases (< {prev})")));
        }
        if o > m64 {
            return Err(bad(format!("offset {o} at index {i} exceeds m = {m64}")));
        }
        prev = o;
        offsets.push(o as usize);
    }
    if prev != m64 {
        return Err(bad(format!("last offset {prev} != m = {m64}")));
    }

    let mut arcs = vec![0 as V; m];
    let mut buf = vec![0u8; m * 4];
    r.read_exact(&mut buf)?;
    for (i, c) in buf.chunks_exact(4).enumerate() {
        let a = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        if a as u64 >= n64 {
            return Err(bad(format!("arc {a} at index {i} out of range (n = {n})")));
        }
        arcs[i] = a;
    }
    Ok(Graph::from_raw_parts(offsets, arcs))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Write the PBBS "AdjacencyGraph" text format used by the paper's suite.
pub fn save_adjacency_text(g: &Graph, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "AdjacencyGraph")?;
    writeln!(w, "{}", g.n())?;
    writeln!(w, "{}", g.m())?;
    for &o in &g.offsets()[..g.n()] {
        writeln!(w, "{o}")?;
    }
    for &a in g.arcs() {
        writeln!(w, "{a}")?;
    }
    w.flush()
}

/// Read the PBBS "AdjacencyGraph" text format.
///
/// Validated like [`load_binary`]: counts/offsets/arcs are parsed as full
/// `u64` values (no silent `as u32` wrap for ids ≥ 2³²), offsets must be
/// nondecreasing and bounded by `m`, arcs must be `< n` — violations
/// return [`io::ErrorKind::InvalidData`] naming the offending value.
pub fn load_adjacency_text(path: &Path) -> io::Result<Graph> {
    let r = BufReader::new(File::open(path)?);
    let mut lines = r.lines();
    let header = lines.next().ok_or_else(|| bad("empty file"))??;
    if header.trim() != "AdjacencyGraph" {
        return Err(bad("bad header"));
    }
    let mut next_u64 = |what: &str| -> io::Result<u64> {
        loop {
            let line = lines
                .next()
                .ok_or_else(|| bad(format!("missing {what}")))??;
            let t = line.trim();
            if !t.is_empty() {
                return t
                    .parse::<u64>()
                    .map_err(|e| bad(format!("{what} {t:?}: {e}")));
            }
        }
    };
    let n64 = next_u64("n")?;
    if n64 >= u32::MAX as u64 {
        return Err(bad(format!("vertex count {n64} exceeds the u32 id space")));
    }
    let n = n64 as usize;
    let m64 = next_u64("m")?;
    if m64 > usize::MAX as u64 {
        return Err(bad(format!("arc count {m64} exceeds the address space")));
    }
    let m = m64 as usize;
    let mut offsets = Vec::new();
    let mut prev = 0u64;
    for i in 0..n {
        let o = next_u64("offset")?;
        if i == 0 && o != 0 {
            return Err(bad(format!("first offset is {o}, expected 0")));
        }
        if o < prev {
            return Err(bad(format!("offset {o} at index {i} decreases (< {prev})")));
        }
        if o > m64 {
            return Err(bad(format!("offset {o} at index {i} exceeds m = {m64}")));
        }
        prev = o;
        offsets.push(o as usize);
    }
    offsets.push(m);
    let mut arcs = Vec::new();
    for i in 0..m {
        let a = next_u64("arc")?;
        if a >= n64 {
            return Err(bad(format!("arc {a} at index {i} out of range (n = {n})")));
        }
        arcs.push(a as V);
    }
    Ok(Graph::from_raw_parts(offsets, arcs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fastbcc_io_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn binary_roundtrip() {
        let g = windmill(13);
        let p = tmp("bin");
        save_binary(&g, &p).unwrap();
        let h = load_binary(&p).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn text_roundtrip() {
        let g = barbell(4, 3);
        let p = tmp("txt");
        save_adjacency_text(&g, &p).unwrap();
        let h = load_adjacency_text(&p).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::empty(4);
        let p = tmp("empty");
        save_binary(&g, &p).unwrap();
        assert_eq!(load_binary(&p).unwrap(), g);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let p = tmp("junk");
        std::fs::write(&p, b"NOTAGRAPH-file").unwrap();
        assert!(load_binary(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
