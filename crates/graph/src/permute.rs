//! Vertex relabeling.
//!
//! FAST-BCC's *First-CC* step reorders the CSR "to let each CC be
//! contiguous" (paper §5, *Spanning Forest*). This module provides the
//! permutation application; computing a CC-contiguous permutation lives in
//! the connectivity crate (it needs the labels).

use crate::csr::Graph;
use crate::types::V;
use fastbcc_primitives::par::par_for;
use fastbcc_primitives::scan::prefix_sums;
use fastbcc_primitives::slice::{uninit_vec, UnsafeSlice};

/// Relabel vertices: new id of `v` is `perm[v]`; `perm` must be a bijection
/// on `0..n`. `O(n + m)` work, `O(log n)` span.
pub fn relabel(g: &Graph, perm: &[V]) -> Graph {
    let n = g.n();
    assert_eq!(perm.len(), n);
    debug_assert!(is_permutation(perm));

    // inverse permutation: old id at each new position.
    // SAFETY: `perm` is a bijection, so the scatter below writes every
    // index exactly once before `inv` is read.
    let mut inv: Vec<V> = unsafe { uninit_vec(n) };
    {
        let view = UnsafeSlice::new(&mut inv);
        // SAFETY: disjoint writes — `perm` is injective.
        par_for(n, |old| unsafe { view.write(perm[old] as usize, old as V) });
    }

    // new offsets = scanned degrees in new order.
    // SAFETY: the loop plus the tail write below cover all of `0..=n`.
    let mut offsets: Vec<usize> = unsafe { uninit_vec(n + 1) };
    {
        let view = UnsafeSlice::new(&mut offsets);
        // SAFETY: one write per distinct index `new` — disjoint.
        par_for(n, |new| unsafe { view.write(new, g.degree(inv[new])) });
        // SAFETY: index `n` is written by no other thread.
        unsafe { view.write(n, 0) };
    }
    let m = prefix_sums(&mut offsets[..]);
    debug_assert_eq!(m, g.m());
    // prefix_sums over n+1 entries leaves offsets[n] = total already:
    // entry n contributed 0, so its exclusive prefix is the full sum.

    // SAFETY: the per-vertex arc ranges partition `0..m`, so the scatter
    // below writes every index before use.
    let mut arcs: Vec<V> = unsafe { uninit_vec(m) };
    {
        let view = UnsafeSlice::new(&mut arcs);
        let offsets_ref = &offsets;
        par_for(n, |new| {
            let old = inv[new];
            let base = offsets_ref[new];
            let mut renamed: Vec<V> = g.neighbors(old).iter().map(|&w| perm[w as usize]).collect();
            renamed.sort_unstable();
            for (i, w) in renamed.into_iter().enumerate() {
                // SAFETY: each new vertex owns its disjoint arc range.
                unsafe { view.write(base + i, w) };
            }
        });
    }
    Graph::from_raw_parts(offsets, arcs)
}

/// Identity permutation.
pub fn identity(n: usize) -> Vec<V> {
    (0..n as V).collect()
}

/// Check that `perm` is a bijection on `0..n`.
pub fn is_permutation(perm: &[V]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        if p as usize >= n || seen[p as usize] {
            return false;
        }
        seen[p as usize] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::generators::classic::*;
    use fastbcc_primitives::rng::Rng;

    #[test]
    fn identity_relabel_is_noop() {
        let g = cycle(7);
        let h = relabel(&g, &identity(7));
        assert_eq!(g, h);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        // Rotate labels by 2.
        let perm: Vec<V> = (0..5).map(|v| ((v + 2) % 5) as V).collect();
        let h = relabel(&g, &perm);
        assert_eq!(h.n(), g.n());
        assert_eq!(h.m(), g.m());
        assert!(h.is_symmetric());
        for (u, v) in g.iter_edges() {
            assert!(h.has_edge(perm[u as usize], perm[v as usize]));
        }
    }

    #[test]
    fn random_permutation_roundtrip() {
        let g = windmill(20);
        let n = g.n();
        let mut r = Rng::new(5);
        let mut perm = identity(n);
        r.shuffle(&mut perm);
        let h = relabel(&g, &perm);
        // Applying the inverse brings the graph back.
        let mut inv = vec![0 as V; n];
        for (old, &new) in perm.iter().enumerate() {
            inv[new as usize] = old as V;
        }
        let back = relabel(&h, &inv);
        assert_eq!(back, g);
    }

    #[test]
    fn is_permutation_detects_errors() {
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert!(is_permutation(&[]));
    }
}
