//! `GraphView` — the backend-generic graph contract of the pipeline.
//!
//! Every solve/query layer above this crate (edgeMap frontiers, LDD,
//! connectivity, the BCC engine, the serving rebuilder, the bench
//! harness) is generic over this trait instead of assuming the in-RAM
//! `Vec<usize>`/`Vec<V>` CSR of [`Graph`]. Three backends implement it:
//!
//! * [`Graph`] — the flat CSR (offsets + arc slices; zero-cost decode);
//! * [`crate::compressed::CompressedGraph`] — varint/delta-encoded
//!   difference-sorted adjacency in fixed-size blocks (Ligra+/GBBS
//!   style), decoded per-block inside the hot loops;
//! * [`crate::mmap::MappedGraph`] — either layout loaded zero-copy from
//!   the validated on-disk snapshot format via `mmap`.
//!
//! `GraphView` extends the low-level [`CsrView`] contract that
//! `fastbcc-primitives::edgemap` consumes (that crate sits *below* this
//! one, so the streaming-decode core lives there) with the graph-level
//! conveniences the solve layers need: undirected edge counts, arc
//! ranges, whole-neighbor-list visits, membership tests, and space
//! reporting. All methods are generic, so each backend monomorphizes its
//! own copies of the hot loops — no virtual dispatch per neighbor.
//!
//! # Invariants
//!
//! Implementations must present neighbor lists **sorted ascending**
//! (duplicates allowed — multi-edges). The compressed backend's
//! difference encoder relies on this to emit non-negative deltas, and
//! [`has_edge`](GraphView::has_edge) relies on it to stop scanning early;
//! see [`Graph::has_sorted_adjacency`].

use crate::types::V;
pub use fastbcc_primitives::edgemap::CsrView;

/// Backend-generic read-only graph: [`CsrView`] plus the graph-level
/// surface the solve and query layers use. See the [module docs](self)
/// for the backend list and the sorted-adjacency invariant.
pub trait GraphView: CsrView {
    /// Short human-readable backend tag (`"flat"`, `"compressed"`, …) for
    /// bench rows and logs.
    fn backend_name(&self) -> &'static str;

    /// Number of undirected edges, assuming symmetric storage.
    #[inline]
    fn m_undirected(&self) -> usize {
        self.m_arcs() / 2
    }

    /// The arc index range of `v`'s neighbor list.
    #[inline]
    fn arc_range(&self, v: V) -> std::ops::Range<usize> {
        self.arc_start(v as usize)..self.arc_start(v as usize + 1)
    }

    /// Membership test. Neighbor lists are sorted, so the scan stops at
    /// the first neighbor `> v`; backends with random access (the flat
    /// CSR) override with a binary search.
    fn has_edge(&self, u: V, v: V) -> bool {
        let mut found = false;
        self.neighbors_while(u, |w| {
            if w >= v {
                found = w == v;
                return false;
            }
            true
        });
        found
    }

    /// Visit every undirected edge once (`u < w`, assuming symmetric
    /// storage), sequentially in ascending `(u, w)` order.
    fn for_edges<F: FnMut(V, V)>(&self, mut f: F) {
        for u in 0..self.n() as V {
            self.neighbors_in(u, 0, self.degree(u), |_, w| {
                if u < w {
                    f(u, w);
                }
            });
        }
    }

    /// Heap (or mapped) bytes holding the graph, for space reporting.
    fn bytes(&self) -> usize;

    /// Bytes *reserved* by the backend (capacity, not length). Equals
    /// [`bytes`](GraphView::bytes) for backends without slack (mmap).
    fn capacity_bytes(&self) -> usize {
        self.bytes()
    }
}

impl CsrView for crate::csr::Graph {
    #[inline]
    fn n(&self) -> usize {
        Self::n(self)
    }

    #[inline]
    fn m_arcs(&self) -> usize {
        self.m()
    }

    #[inline]
    fn arc_start(&self, v: usize) -> usize {
        self.offsets()[v]
    }

    #[inline]
    fn degree(&self, v: u32) -> usize {
        Self::degree(self, v)
    }

    #[inline]
    fn neighbors_in<F: FnMut(usize, u32)>(&self, v: u32, lo: usize, hi: usize, mut f: F) {
        for (j, &w) in self.neighbors(v)[lo..hi].iter().enumerate() {
            f(lo + j, w);
        }
    }

    #[inline]
    fn neighbors_while<F: FnMut(u32) -> bool>(&self, v: u32, mut f: F) {
        for &w in self.neighbors(v) {
            if !f(w) {
                break;
            }
        }
    }
}

impl GraphView for crate::csr::Graph {
    #[inline]
    fn backend_name(&self) -> &'static str {
        "flat"
    }

    #[inline]
    fn m_undirected(&self) -> usize {
        Self::m_undirected(self)
    }

    #[inline]
    fn has_edge(&self, u: V, v: V) -> bool {
        Self::has_edge(self, u, v)
    }

    #[inline]
    fn bytes(&self) -> usize {
        Self::bytes(self)
    }

    #[inline]
    fn capacity_bytes(&self) -> usize {
        Self::capacity_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::*;

    #[test]
    fn flat_view_agrees_with_inherent_accessors() {
        let g = barbell(5, 4);
        assert_eq!(CsrView::n(&g), g.n());
        assert_eq!(g.m_arcs(), g.m());
        assert_eq!(GraphView::m_undirected(&g), g.m_undirected());
        for v in 0..g.n() as V {
            assert_eq!(CsrView::degree(&g, v), g.degree(v));
            assert_eq!(GraphView::arc_range(&g, v), g.arc_range(v));
            let mut got = Vec::new();
            g.for_neighbors(v, |w| got.push(w));
            assert_eq!(got, g.neighbors(v));
            let mut ranged = Vec::new();
            let d = g.degree(v);
            g.neighbors_in(v, d / 2, d, |j, w| ranged.push((j, w)));
            for (j, w) in ranged {
                assert_eq!(g.neighbors(v)[j], w);
                assert!(j >= d / 2 && j < d);
            }
        }
        let mut edges = Vec::new();
        g.for_edges(|u, w| edges.push((u, w)));
        assert_eq!(edges, g.iter_edges().collect::<Vec<_>>());
    }

    #[test]
    fn default_has_edge_matches_binary_search() {
        let g = windmill(9);
        // Route through the default (scan-based) implementation by
        // erasing the override behind a generic helper.
        fn scan_has_edge<G: GraphView>(g: &G, u: V, v: V) -> bool {
            let mut found = false;
            g.neighbors_while(u, |w| {
                if w >= v {
                    found = w == v;
                    return false;
                }
                true
            });
            found
        }
        for u in 0..g.n() as V {
            for v in 0..g.n() as V {
                assert_eq!(scan_has_edge(&g, u, v), g.has_edge(u, v), "({u},{v})");
            }
        }
    }
}
