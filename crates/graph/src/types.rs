//! Core vertex/edge types shared across the workspace.

/// Vertex id. `u32` halves the memory traffic of `usize` ids and covers
/// every graph this machine can hold; edge *counts* use `usize`.
pub type V = u32;

/// Sentinel "no vertex" value (also the hash-bag empty marker).
pub const NONE: V = u32::MAX;

/// An undirected edge list plus its vertex-count, the interchange format
/// between generators and the CSR builder.
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    /// Number of vertices (ids in `edges` are `< n`).
    pub n: usize,
    /// Undirected edges; the builder symmetrizes, dedups and drops loops.
    pub edges: Vec<(V, V)>,
}

impl EdgeList {
    /// New edge list over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// New edge list with preallocated edge capacity.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Self {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Append an edge (unchecked besides debug assertions).
    #[inline]
    pub fn push(&mut self, u: V, v: V) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        self.edges.push((u, v));
    }

    /// Number of (possibly duplicate) undirected edges recorded.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges are recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_basics() {
        let mut el = EdgeList::new(4);
        assert!(el.is_empty());
        el.push(0, 1);
        el.push(2, 3);
        assert_eq!(el.len(), 2);
        assert_eq!(el.edges, vec![(0, 1), (2, 3)]);
        let el2 = EdgeList::with_capacity(10, 100);
        assert!(el2.edges.capacity() >= 100);
    }
}
