//! Graph statistics for the benchmark tables: approximate diameter (the
//! `D` column of Tab. 2), degree distribution summaries, and a simple
//! sequential connectivity count used as test oracle.
//!
//! These run once per graph when printing tables — they are deliberately
//! simple sequential code, not part of any timed region.

use crate::csr::Graph;
use crate::types::{NONE, V};
use std::collections::VecDeque;

/// BFS distances from `src` (u32::MAX = unreachable).
pub fn bfs_distances(g: &Graph, src: V) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// The farthest reachable vertex from `src` and its distance.
fn eccentricity_sweep(g: &Graph, src: V) -> (V, u32) {
    let dist = bfs_distances(g, src);
    let mut far = src;
    let mut best = 0;
    for (v, &d) in dist.iter().enumerate() {
        if d != u32::MAX && d > best {
            best = d;
            far = v as V;
        }
    }
    (far, best)
}

/// Approximate diameter by iterated double-sweep BFS (exact on trees, a
/// lower bound in general — the same technique behind the paper's
/// "approximate diameter" column).
pub fn approx_diameter(g: &Graph, sweeps: usize) -> u32 {
    if g.n() == 0 {
        return 0;
    }
    let mut best = 0;
    let mut src = 0 as V;
    // Restart from the max-degree vertex too: helps on disconnected inputs.
    let starts = [src, g.max_degree_vertex()];
    for &s in &starts {
        if s == NONE {
            continue;
        }
        src = s;
        for _ in 0..sweeps.max(1) {
            let (far, d) = eccentricity_sweep(g, src);
            if d <= best && far == src {
                break;
            }
            best = best.max(d);
            src = far;
        }
    }
    best
}

/// Number of connected components (sequential BFS oracle).
pub fn cc_count_seq(g: &Graph) -> usize {
    let mut seen = vec![false; g.n()];
    let mut count = 0;
    let mut q = VecDeque::new();
    for s in 0..g.n() {
        if seen[s] {
            continue;
        }
        count += 1;
        seen[s] = true;
        q.push_back(s as V);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    q.push_back(v);
                }
            }
        }
    }
    count
}

/// Sequential connected-component labels (test oracle; label = min id
/// reached first by BFS order, but callers should only compare partitions).
pub fn cc_labels_seq(g: &Graph) -> Vec<u32> {
    let mut label = vec![NONE; g.n()];
    let mut q = VecDeque::new();
    for s in 0..g.n() {
        if label[s] != NONE {
            continue;
        }
        label[s] = s as u32;
        q.push_back(s as V);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if label[v as usize] == NONE {
                    label[v as usize] = s as u32;
                    q.push_back(v);
                }
            }
        }
    }
    label
}

/// Degree summary: (min, max, average).
pub fn degree_stats(g: &Graph) -> (usize, usize, f64) {
    if g.n() == 0 {
        return (0, 0, 0.0);
    }
    let degs = (0..g.n() as V).map(|v| g.degree(v));
    let min = degs.clone().min().unwrap();
    let max = degs.clone().max().unwrap();
    (min, max, g.m() as f64 / g.n() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::*;

    #[test]
    fn bfs_on_path() {
        let g = path(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn diameter_exact_on_simple_shapes() {
        assert_eq!(approx_diameter(&path(100), 3), 99);
        assert_eq!(approx_diameter(&cycle(10), 3), 5);
        assert_eq!(approx_diameter(&complete(8), 3), 1);
        assert_eq!(approx_diameter(&star(50), 3), 2);
    }

    #[test]
    fn diameter_on_disconnected() {
        let g = disjoint_union(&[&path(10), &path(30)]);
        // Double sweep finds at least the larger component's diameter if a
        // start lands there; we accept a lower bound ≥ the first component.
        let d = approx_diameter(&g, 3);
        assert!(d >= 9, "diameter estimate {d}");
    }

    #[test]
    fn cc_counts() {
        assert_eq!(cc_count_seq(&path(10)), 1);
        let g = disjoint_union(&[&cycle(3), &cycle(4), &path(2)]);
        assert_eq!(cc_count_seq(&g), 3);
        assert_eq!(cc_count_seq(&crate::csr::Graph::empty(5)), 5);
    }

    #[test]
    fn cc_labels_partition_correctly() {
        let g = disjoint_union(&[&cycle(3), &path(4)]);
        let l = cc_labels_seq(&g);
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_eq!(l[3], l[4]);
        assert_ne!(l[0], l[3]);
    }

    #[test]
    fn degree_stats_basic() {
        let (min, max, avg) = degree_stats(&star(5));
        assert_eq!(min, 1);
        assert_eq!(max, 4);
        assert!((avg - 8.0 / 5.0).abs() < 1e-9);
    }
}
