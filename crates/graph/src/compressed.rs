//! Block-coded compressed CSR: varint/delta adjacency (Ligra+/GBBS style).
//!
//! The flat [`Graph`] spends `4` bytes per arc plus `8` bytes per vertex.
//! On the graphs this workspace targets, consecutive neighbors of a
//! sorted adjacency list are close together, so the gap between them fits
//! in one or two bytes of a LEB128 varint — the classic Ligra+/GBBS
//! difference encoding. [`CompressedGraph`] stores, per vertex:
//!
//! * fixed-size **blocks** of [`BLOCK`] neighbors. The first entry of a
//!   block is the *signed* difference `w₀ − v` in zigzag varint form (so
//!   every block decodes independently of its predecessors); the
//!   remaining entries are plain varints of the non-negative gaps
//!   `wⱼ − wⱼ₋₁` (a gap of `0` encodes a multi-edge);
//! * when a vertex spans more than one block, a **block header** of
//!   `u32` byte offsets (one per block after the first, relative to the
//!   end of the header) in front of the payload, so a range decode can
//!   jump straight to the block covering a local index — this is what
//!   lets the edgeMap hot loops split work *inside* a high-degree
//!   vertex's list without decoding from its start.
//!
//! Two `u64` tables of length `n + 1` frame the stream: cumulative
//! degrees (`arc_offsets`, the [`CsrView`](fastbcc_primitives::CsrView)
//! `arc_start` contract used for arc-balanced block splitting) and byte
//! offsets into the shared payload. Decoding is streaming and
//! allocation-free, so warm solves over this backend keep the engine's
//! `fresh_alloc_bytes == 0` guarantee.
//!
//! The difference encoder **relies on the sorted-adjacency invariant** of
//! [`Graph`] (see [`Graph::has_sorted_adjacency`]): gaps after the block
//! head must be non-negative to be representable. [`from_graph`]
//! (CompressedGraph::from_graph) checks this and panics on violation
//! rather than encode garbage.

use crate::csr::Graph;
use crate::types::V;
use fastbcc_primitives::edgemap::CsrView;
use fastbcc_primitives::par::par_for_grain;
use fastbcc_primitives::scan::scan_inclusive_u64;
use fastbcc_primitives::slice::UnsafeSlice;

use crate::view::GraphView;

/// Neighbors per compression block. 64 keeps the per-block header cost
/// (4 bytes) under one bit per arc while bounding the sequential decode
/// a mid-list range split must pay to reach its first index.
pub const BLOCK: usize = 64;

/// A graph with varint/delta block-coded adjacency. Build with
/// [`CompressedGraph::from_graph`]; solve through the
/// [`GraphView`] impl. See the [module docs](self) for the layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedGraph {
    /// Cumulative degrees, length `n + 1` (`arc_offsets[n] == m`).
    arc_offsets: Vec<u64>,
    /// Byte offsets into `data`, length `n + 1`.
    byte_offsets: Vec<u64>,
    /// Concatenated per-vertex streams: block header, then blocks.
    data: Vec<u8>,
}

/// Append `x` as a LEB128 varint.
#[inline]
fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x != 0 {
            out.push(byte | 0x80);
        } else {
            out.push(byte);
            break;
        }
    }
}

/// Byte length of `x` as a LEB128 varint.
#[inline]
fn varint_len(x: u64) -> usize {
    (64 - x.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Decode one LEB128 varint at `*pos`, advancing it. Panics (bounds
/// check) past the end of `bytes` — validated streams never do.
#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        x |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

/// Checked decode for untrusted streams: `None` on slice overrun or a
/// varint wider than a `u64`.
#[inline]
fn try_read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && b & 0x7e != 0) {
            return None;
        }
        x |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
    }
}

/// Zigzag-fold a signed difference into an unsigned varint payload.
#[inline]
fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// Number of blocks a degree-`d` list occupies.
#[inline]
fn num_blocks(d: usize) -> usize {
    d.div_ceil(BLOCK)
}

/// Header bytes in front of a degree-`d` stream.
#[inline]
fn header_len(d: usize) -> usize {
    num_blocks(d).saturating_sub(1) * 4
}

/// Encode `v`'s sorted neighbor list into `out`. Panics if a gap after a
/// block head is negative (unsorted input).
fn encode_vertex(v: V, neighbors: &[V], out: &mut Vec<u8>) {
    let d = neighbors.len();
    let nb = num_blocks(d);
    let header_at = out.len();
    // Reserve the header; block starts are back-patched as they are laid.
    out.resize(header_at + header_len(d), 0);
    let payload_at = out.len();
    for b in 0..nb {
        if b > 0 {
            let rel = (out.len() - payload_at) as u32;
            let at = header_at + (b - 1) * 4;
            out[at..at + 4].copy_from_slice(&rel.to_le_bytes());
        }
        let lo = b * BLOCK;
        let hi = d.min(lo + BLOCK);
        write_varint(out, zigzag(neighbors[lo] as i64 - v as i64));
        for j in lo + 1..hi {
            let gap = neighbors[j]
                .checked_sub(neighbors[j - 1])
                .unwrap_or_else(|| {
                    panic!(
                        "unsorted adjacency at vertex {v}: {} after {}",
                        neighbors[j],
                        neighbors[j - 1]
                    )
                });
            write_varint(out, gap as u64);
        }
    }
}

/// Exact byte length [`encode_vertex`] will produce for this list.
fn encoded_len(v: V, neighbors: &[V]) -> usize {
    let d = neighbors.len();
    let mut len = header_len(d);
    for b in 0..num_blocks(d) {
        let lo = b * BLOCK;
        let hi = d.min(lo + BLOCK);
        len += varint_len(zigzag(neighbors[lo] as i64 - v as i64));
        for j in lo + 1..hi {
            len += varint_len((neighbors[j] - neighbors[j - 1]) as u64);
        }
    }
    len
}

/// Stream neighbors of `v` at local indices `lo..hi` out of its byte
/// stream (`deg` = full degree, `bytes` = the vertex's stream). Jumps to
/// the covering block via the header, decodes it from its head, and
/// crosses block boundaries as needed.
pub(crate) fn decode_neighbors_in<F: FnMut(usize, u32)>(
    v: u32,
    deg: usize,
    bytes: &[u8],
    lo: usize,
    hi: usize,
    mut f: F,
) {
    if lo >= hi {
        return;
    }
    let hl = header_len(deg);
    let b0 = lo / BLOCK;
    let mut pos = if b0 == 0 {
        hl
    } else {
        let at = (b0 - 1) * 4;
        hl + u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]) as usize
    };
    let mut idx = b0 * BLOCK;
    let mut prev = 0u32;
    while idx < hi {
        let w = if idx.is_multiple_of(BLOCK) {
            // Block head: absolute-relative-to-v zigzag varint.
            (v as i64 + unzigzag(read_varint(bytes, &mut pos))) as u32
        } else {
            prev + read_varint(bytes, &mut pos) as u32
        };
        if idx >= lo {
            f(idx, w);
        }
        prev = w;
        idx += 1;
    }
}

/// Stream all neighbors of `v` in order until `f` returns `false`.
pub(crate) fn decode_neighbors_while<F: FnMut(u32) -> bool>(
    v: u32,
    deg: usize,
    bytes: &[u8],
    mut f: F,
) {
    let mut pos = header_len(deg);
    let mut prev = 0u32;
    for idx in 0..deg {
        let w = if idx.is_multiple_of(BLOCK) {
            (v as i64 + unzigzag(read_varint(bytes, &mut pos))) as u32
        } else {
            prev + read_varint(bytes, &mut pos) as u32
        };
        if !f(w) {
            return;
        }
        prev = w;
    }
}

/// Validate one vertex's untrusted stream: every varint in bounds, the
/// stream consumed exactly, header offsets matching real block starts,
/// ids in `0..n`, and gaps non-negative (sorted). Returns a description
/// of the first violation.
pub(crate) fn validate_vertex_stream(
    v: u32,
    deg: usize,
    bytes: &[u8],
    n: usize,
) -> Result<(), String> {
    let hl = header_len(deg);
    if bytes.len() < hl {
        return Err(format!("vertex {v}: stream shorter than its block header"));
    }
    let mut pos = hl;
    // Invariant: `prev` is only ever assigned a value already checked to
    // lie in `0..n`, so the running state cannot wrap however adversarial
    // the stream's varints are.
    let mut prev = 0u64;
    for idx in 0..deg {
        if idx % BLOCK == 0 {
            if idx > 0 {
                let b = idx / BLOCK;
                let at = (b - 1) * 4;
                let rel =
                    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
                if hl + rel as usize != pos {
                    return Err(format!(
                        "vertex {v}: header says block {b} starts at {} but it starts at {}",
                        hl + rel as usize,
                        pos
                    ));
                }
            }
            let raw = try_read_varint(bytes, &mut pos)
                .ok_or_else(|| format!("vertex {v}: varint overruns the stream"))?;
            // Reconstruct in i128: `v + unzigzag(raw)` can exceed i64 for
            // extreme heads, and the range check must see the true value.
            let w = v as i128 + unzigzag(raw) as i128;
            if w < 0 || w >= n as i128 {
                return Err(format!("vertex {v}: neighbor {w} out of range (n = {n})"));
            }
            if idx > 0 && (w as u64) < prev {
                return Err(format!("vertex {v}: block head {w} breaks sortedness"));
            }
            prev = w as u64;
        } else {
            let gap = try_read_varint(bytes, &mut pos)
                .ok_or_else(|| format!("vertex {v}: varint overruns the stream"))?;
            // Gaps stay unsigned: a huge gap must not reinterpret as a
            // negative delta that lands back inside `0..n`.
            prev = prev
                .checked_add(gap)
                .filter(|&w| w < n as u64)
                .ok_or_else(|| {
                    format!("vertex {v}: gap {gap} pushes a neighbor out of range (n = {n})")
                })?;
        }
    }
    if pos != bytes.len() {
        return Err(format!(
            "vertex {v}: {} trailing bytes after its last block",
            bytes.len() - pos
        ));
    }
    Ok(())
}

impl CompressedGraph {
    /// Compress a flat CSR graph. Panics if `g`'s neighbor lists are not
    /// sorted ascending — the invariant the difference encoder needs
    /// (cheap full check in debug builds, per-gap check always).
    pub fn from_graph(g: &Graph) -> Self {
        debug_assert!(
            g.has_sorted_adjacency(),
            "CompressedGraph::from_graph needs sorted adjacency"
        );
        let n = g.n();
        let mut arc_offsets = Vec::with_capacity(n + 1);
        arc_offsets.push(0u64);
        arc_offsets.extend(g.offsets()[1..].iter().map(|&o| o as u64));

        // Pass 1: exact per-vertex byte sizes, scanned into offsets.
        let mut byte_offsets = vec![0u64; n + 1];
        {
            let sizes = UnsafeSlice::new(&mut byte_offsets[1..]);
            par_for_grain(n, 256, |v| {
                // SAFETY: one writer per index.
                unsafe { sizes.write(v, encoded_len(v as V, g.neighbors(v as V)) as u64) };
            });
        }
        let total = scan_inclusive_u64(&mut byte_offsets[1..]) as usize;

        // Pass 2: encode each vertex into its disjoint byte range.
        let mut data = vec![0u8; total];
        {
            let out = UnsafeSlice::new(data.as_mut_slice());
            let offs: &[u64] = &byte_offsets;
            par_for_grain(n, 256, |v| {
                let (lo, hi) = (offs[v] as usize, offs[v + 1] as usize);
                let mut buf = Vec::with_capacity(hi - lo);
                encode_vertex(v as V, g.neighbors(v as V), &mut buf);
                debug_assert_eq!(buf.len(), hi - lo);
                // SAFETY: byte ranges of distinct vertices are disjoint.
                unsafe { out.slice_mut(lo, hi - lo) }.copy_from_slice(&buf);
            });
        }
        Self {
            arc_offsets,
            byte_offsets,
            data,
        }
    }

    /// Rebuild raw parts (trusted: a loader that already validated them).
    pub(crate) fn from_validated_parts(
        arc_offsets: Vec<u64>,
        byte_offsets: Vec<u64>,
        data: Vec<u8>,
    ) -> Self {
        Self {
            arc_offsets,
            byte_offsets,
            data,
        }
    }

    /// Cumulative degree table (length `n + 1`).
    pub(crate) fn arc_offsets(&self) -> &[u64] {
        &self.arc_offsets
    }

    /// Byte offset table (length `n + 1`).
    pub(crate) fn byte_offsets(&self) -> &[u64] {
        &self.byte_offsets
    }

    /// The concatenated block-coded payload.
    pub(crate) fn data(&self) -> &[u8] {
        &self.data
    }

    /// The vertex's byte stream.
    #[inline]
    fn stream(&self, v: usize) -> &[u8] {
        &self.data[self.byte_offsets[v] as usize..self.byte_offsets[v + 1] as usize]
    }

    /// Decode back into a flat [`Graph`] (tests, interop).
    pub fn decompress(&self) -> Graph {
        let n = CsrView::n(self);
        let offsets: Vec<usize> = self.arc_offsets.iter().map(|&o| o as usize).collect();
        let mut arcs = vec![0 as V; self.m_arcs()];
        {
            let out = UnsafeSlice::new(arcs.as_mut_slice());
            par_for_grain(n, 256, |v| {
                let base = self.arc_offsets[v] as usize;
                self.neighbors_in(v as u32, 0, CsrView::degree(self, v as u32), |j, w| {
                    // SAFETY: arc ranges of distinct vertices are disjoint.
                    unsafe { out.write(base + j, w) };
                });
            });
        }
        Graph::from_raw_parts(offsets, arcs)
    }
}

impl CsrView for CompressedGraph {
    #[inline]
    fn n(&self) -> usize {
        self.arc_offsets.len() - 1
    }

    #[inline]
    fn m_arcs(&self) -> usize {
        *self.arc_offsets.last().unwrap() as usize
    }

    #[inline]
    fn arc_start(&self, v: usize) -> usize {
        self.arc_offsets[v] as usize
    }

    #[inline]
    fn neighbors_in<F: FnMut(usize, u32)>(&self, v: u32, lo: usize, hi: usize, f: F) {
        decode_neighbors_in(
            v,
            CsrView::degree(self, v),
            self.stream(v as usize),
            lo,
            hi,
            f,
        );
    }

    #[inline]
    fn neighbors_while<F: FnMut(u32) -> bool>(&self, v: u32, f: F) {
        decode_neighbors_while(v, CsrView::degree(self, v), self.stream(v as usize), f);
    }
}

impl GraphView for CompressedGraph {
    fn backend_name(&self) -> &'static str {
        "compressed"
    }

    fn bytes(&self) -> usize {
        8 * (self.arc_offsets.len() + self.byte_offsets.len()) + self.data.len()
    }

    fn capacity_bytes(&self) -> usize {
        8 * (self.arc_offsets.capacity() + self.byte_offsets.capacity()) + self.data.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::*;

    fn roundtrips(g: &Graph) {
        let cg = CompressedGraph::from_graph(g);
        assert_eq!(CsrView::n(&cg), g.n());
        assert_eq!(cg.m_arcs(), g.m());
        assert_eq!(&cg.decompress(), g);
        // Range decode agrees with the flat slices on every sub-range cut.
        for v in 0..g.n() as V {
            let nbrs = g.neighbors(v);
            let d = nbrs.len();
            for (lo, hi) in [(0, d), (d / 2, d), (d / 3, 2 * d / 3), (d, d)] {
                let mut got = Vec::new();
                cg.neighbors_in(v, lo, hi, |j, w| got.push((j, w)));
                let want: Vec<_> = (lo..hi).map(|j| (j, nbrs[j])).collect();
                assert_eq!(got, want, "vertex {v} range {lo}..{hi}");
            }
            let mut stopped = Vec::new();
            cg.neighbors_while(v, |w| {
                stopped.push(w);
                stopped.len() < 3
            });
            assert_eq!(&stopped[..], &nbrs[..d.min(3)]);
        }
        // Every stream self-validates.
        for v in 0..g.n() {
            validate_vertex_stream(
                v as u32,
                CsrView::degree(&cg, v as u32),
                &cg.data()[cg.byte_offsets()[v] as usize..cg.byte_offsets()[v + 1] as usize],
                g.n(),
            )
            .unwrap();
        }
    }

    #[test]
    fn roundtrip_zoo() {
        roundtrips(&Graph::empty(0));
        roundtrips(&Graph::empty(7));
        roundtrips(&path(50));
        roundtrips(&cycle(33));
        roundtrips(&complete(40)); // degree 39: single block
        roundtrips(&complete(70)); // degree 69: two blocks, header in play
        roundtrips(&star(300)); // hub spans 5 blocks
        roundtrips(&barbell(65, 10));
        roundtrips(&windmill(21));
    }

    #[test]
    fn multi_edges_compress() {
        // Gap 0 between duplicate neighbors must survive the roundtrip.
        let g = Graph::from_raw_parts(vec![0, 2, 4], vec![1, 1, 0, 0]);
        roundtrips(&g);
    }

    #[test]
    fn compresses_below_flat_on_local_graphs() {
        let g = crate::generators::grid::grid2d(40, 40, false);
        let cg = CompressedGraph::from_graph(&g);
        assert!(
            GraphView::bytes(&cg) < GraphView::bytes(&g),
            "compressed {} >= flat {}",
            GraphView::bytes(&cg),
            GraphView::bytes(&g)
        );
    }

    #[test]
    #[should_panic(expected = "unsorted adjacency")]
    fn unsorted_input_panics_in_release_shape_too() {
        // Bypass from_graph's debug assert by encoding directly.
        let mut out = Vec::new();
        encode_vertex(0, &[5, 3], &mut out);
    }

    #[test]
    fn varint_boundaries() {
        for x in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            write_varint(&mut out, x);
            assert_eq!(out.len(), varint_len(x), "len of {x}");
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos), x);
            assert_eq!(pos, out.len());
            let mut pos = 0;
            assert_eq!(try_read_varint(&out, &mut pos), Some(x));
        }
        // Overrun and overflow are rejected by the checked reader.
        assert_eq!(try_read_varint(&[0x80], &mut 0), None);
        assert_eq!(try_read_varint(&[0xff; 11], &mut 0), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for x in [0i64, 1, -1, 63, -64, i32::MAX as i64, -(i32::MAX as i64)] {
            assert_eq!(unzigzag(zigzag(x)), x);
        }
    }
}
