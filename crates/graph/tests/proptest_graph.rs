//! Property-based tests for the graph substrate: the CSR builder's
//! sanitization invariants, relabeling round-trips, and serialization.

use fastbcc_graph::builder::from_edges;
use fastbcc_graph::permute::{identity, is_permutation, relabel};
use fastbcc_graph::{io, V};
use proptest::prelude::*;

fn arb_edges(nmax: usize, mmax: usize) -> impl Strategy<Value = (usize, Vec<(V, V)>)> {
    (1..nmax).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as V, 0..n as V), 0..mmax).prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn builder_sanitizes_and_preserves((n, edges) in arb_edges(60, 200)) {
        let g = from_edges(n, &edges);
        prop_assert_eq!(g.n(), n);
        prop_assert!(g.is_symmetric());
        prop_assert!(!g.has_self_loops());
        prop_assert!(!g.has_multi_edges());
        // Exactly the non-loop input edges survive.
        let mut want: Vec<(V, V)> = edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        want.sort_unstable();
        want.dedup();
        let mut got: Vec<(V, V)> = g.iter_edges().collect();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn neighbor_lists_sorted_and_offsets_monotone((n, edges) in arb_edges(50, 150)) {
        let g = from_edges(n, &edges);
        for v in 0..n as V {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "vertex {} list unsorted", v);
        }
        prop_assert!(g.offsets().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn relabel_roundtrip((n, edges) in arb_edges(40, 120), seed in any::<u64>()) {
        let g = from_edges(n, &edges);
        let mut perm = identity(n);
        let mut r = fastbcc_primitives::rng::Rng::new(seed);
        r.shuffle(&mut perm);
        prop_assert!(is_permutation(&perm));
        let h = relabel(&g, &perm);
        prop_assert_eq!(h.m(), g.m());
        // Inverse brings it back.
        let mut inv = vec![0 as V; n];
        for (old, &new) in perm.iter().enumerate() {
            inv[new as usize] = old as V;
        }
        prop_assert_eq!(relabel(&h, &inv), g);
    }

    #[test]
    fn binary_io_roundtrip((n, edges) in arb_edges(40, 100)) {
        let g = from_edges(n, &edges);
        let path = std::env::temp_dir().join(format!(
            "fastbcc_prop_io_{}_{}.bin",
            std::process::id(),
            g.m()
        ));
        io::save_binary(&g, &path).unwrap();
        let h = io::load_binary(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn degree_sum_equals_arc_count((n, edges) in arb_edges(50, 200)) {
        let g = from_edges(n, &edges);
        let total: usize = (0..n as V).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, g.m());
    }
}
