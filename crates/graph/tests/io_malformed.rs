//! Regression tests: malformed graph files must come back as
//! `Err(InvalidData)` — never a panic, never an abort from an
//! attacker-sized pre-reservation, never a silently corrupt `Graph`.
//! Covers the adjacency-text and binary CSR formats and the mmap
//! snapshot format (`FBCCMAP1`, both backends).

use fastbcc_graph::generators::classic::{barbell, cycle, windmill};
use fastbcc_graph::io::{load_adjacency_text, load_binary, save_adjacency_text, save_binary};
use fastbcc_graph::{load_snapshot, save_snapshot, save_snapshot_compressed, CompressedGraph};
use std::io::ErrorKind;
use std::path::PathBuf;

struct TmpFile(PathBuf);

impl TmpFile {
    fn write(name: &str, bytes: &[u8]) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "fastbcc_io_malformed_{name}_{}",
            std::process::id()
        ));
        std::fs::write(&p, bytes).unwrap();
        Self(p)
    }
}

impl Drop for TmpFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// A syntactically valid binary file for the given header and payload.
fn binary_file(n: u64, m: u64, offsets: &[u64], arcs: &[u32]) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(b"FBCCGRv1");
    b.extend_from_slice(&n.to_le_bytes());
    b.extend_from_slice(&m.to_le_bytes());
    for &o in offsets {
        b.extend_from_slice(&o.to_le_bytes());
    }
    for &a in arcs {
        b.extend_from_slice(&a.to_le_bytes());
    }
    b
}

fn assert_invalid(res: std::io::Result<fastbcc_graph::Graph>, what: &str) {
    match res {
        Ok(_) => panic!("{what}: loaded successfully"),
        Err(e) => assert_eq!(
            e.kind(),
            ErrorKind::InvalidData,
            "{what}: wrong error kind ({e})"
        ),
    }
}

// --- binary format ---------------------------------------------------------

#[test]
fn binary_attacker_sized_vertex_count_is_rejected() {
    // n = u64::MAX would previously drive a Vec::with_capacity(n + 1)
    // abort; the length check must reject it before any allocation.
    let f = TmpFile::write("huge_n", &binary_file(u64::MAX - 1, 0, &[], &[]));
    assert_invalid(load_binary(&f.0), "huge n");
    // Same for an n whose offset table would overflow the length math.
    let f = TmpFile::write("ovf_n", &binary_file(u64::MAX / 8, 0, &[], &[]));
    assert_invalid(load_binary(&f.0), "overflowing offset table");
}

#[test]
fn binary_arc_count_overflow_is_rejected() {
    // m * 4 overflows u64: must error, not wrap to a tiny allocation.
    let f = TmpFile::write("ovf_m", &binary_file(2, u64::MAX / 2, &[0, 0, 0], &[]));
    assert_invalid(load_binary(&f.0), "overflowing arc table");
}

#[test]
fn binary_truncated_and_oversized_files_are_rejected() {
    let good = binary_file(2, 2, &[0, 1, 2], &[1, 0]);
    let f = TmpFile::write("trunc", &good[..good.len() - 3]);
    assert_invalid(load_binary(&f.0), "truncated file");
    let mut padded = good.clone();
    padded.extend_from_slice(b"junk");
    let f = TmpFile::write("padded", &padded);
    assert_invalid(load_binary(&f.0), "trailing garbage");
}

#[test]
fn binary_bad_offsets_are_rejected() {
    // Non-monotone (decreasing) offsets.
    let f = TmpFile::write("decrease", &binary_file(2, 2, &[0, 2, 1], &[1, 0]));
    assert_invalid(load_binary(&f.0), "decreasing offsets");
    // Offset beyond m.
    let f = TmpFile::write("beyond", &binary_file(2, 2, &[0, 3, 2], &[1, 0]));
    assert_invalid(load_binary(&f.0), "offset beyond m");
    // Last offset != m.
    let f = TmpFile::write("lastoff", &binary_file(2, 2, &[0, 1, 1], &[1, 0]));
    assert_invalid(load_binary(&f.0), "last offset != m");
    // First offset != 0.
    let f = TmpFile::write("firstoff", &binary_file(2, 2, &[1, 2, 2], &[1, 0]));
    assert_invalid(load_binary(&f.0), "first offset != 0");
}

#[test]
fn binary_out_of_range_arc_is_rejected() {
    let f = TmpFile::write("bigarc", &binary_file(2, 2, &[0, 1, 2], &[1, 7]));
    assert_invalid(load_binary(&f.0), "arc >= n");
}

#[test]
fn binary_roundtrip_still_works_after_hardening() {
    let g = barbell(5, 3);
    let mut p = std::env::temp_dir();
    p.push(format!("fastbcc_io_malformed_rt_{}", std::process::id()));
    save_binary(&g, &p).unwrap();
    assert_eq!(load_binary(&p).unwrap(), g);
    std::fs::remove_file(&p).ok();
}

// --- text format -----------------------------------------------------------

fn text_file(lines: &[&str]) -> Vec<u8> {
    let mut s = String::from("AdjacencyGraph\n");
    for l in lines {
        s.push_str(l);
        s.push('\n');
    }
    s.into_bytes()
}

#[test]
fn text_arc_wider_than_u32_is_rejected() {
    // 2^32 + 1 would previously truncate to the valid-looking id 1.
    let big = (1u64 << 32) + 1;
    let f = TmpFile::write(
        "wide_arc",
        &text_file(&["3", "2", "0", "1", "2", &big.to_string(), "0"]),
    );
    assert_invalid(load_adjacency_text(&f.0), "arc >= 2^32");
}

#[test]
fn text_out_of_range_arc_is_rejected() {
    let f = TmpFile::write("oob_arc", &text_file(&["2", "2", "0", "1", "1", "5"]));
    assert_invalid(load_adjacency_text(&f.0), "arc >= n");
}

#[test]
fn text_offsets_beyond_m_are_rejected() {
    let f = TmpFile::write("off_gt_m", &text_file(&["2", "2", "0", "9", "1", "0"]));
    assert_invalid(load_adjacency_text(&f.0), "offset beyond m");
    let f = TmpFile::write("off_dec", &text_file(&["3", "2", "0", "2", "1", "1", "0"]));
    assert_invalid(load_adjacency_text(&f.0), "decreasing offsets");
    let f = TmpFile::write("off_first", &text_file(&["2", "2", "1", "2", "1", "0"]));
    assert_invalid(load_adjacency_text(&f.0), "first offset != 0");
}

#[test]
fn text_garbage_and_missing_tokens_are_rejected() {
    let f = TmpFile::write("garbage", &text_file(&["2", "x"]));
    assert_invalid(load_adjacency_text(&f.0), "non-numeric token");
    let f = TmpFile::write("negative", &text_file(&["2", "-1"]));
    assert_invalid(load_adjacency_text(&f.0), "negative token");
    let f = TmpFile::write("missing", &text_file(&["4", "2", "0", "0"]));
    assert_invalid(load_adjacency_text(&f.0), "missing tokens");
    let f = TmpFile::write("huge_n_txt", &text_file(&[&u64::MAX.to_string(), "0"]));
    assert_invalid(load_adjacency_text(&f.0), "huge n");
}

// --- mmap snapshot format --------------------------------------------------

/// A snapshot file with an arbitrary header and raw section bytes.
fn snapshot_file(
    magic: &[u8; 8],
    backend: u32,
    reserved: u32,
    n: u64,
    m: u64,
    payload: u64,
    sections: &[u8],
) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(magic);
    b.extend_from_slice(&backend.to_le_bytes());
    b.extend_from_slice(&reserved.to_le_bytes());
    b.extend_from_slice(&n.to_le_bytes());
    b.extend_from_slice(&m.to_le_bytes());
    b.extend_from_slice(&payload.to_le_bytes());
    b.extend_from_slice(sections);
    b
}

/// A flat-backend snapshot with the given tables.
fn flat_snapshot(n: u64, m: u64, offsets: &[u64], arcs: &[u32]) -> Vec<u8> {
    let mut s = Vec::new();
    for &o in offsets {
        s.extend_from_slice(&o.to_le_bytes());
    }
    for &a in arcs {
        s.extend_from_slice(&a.to_le_bytes());
    }
    snapshot_file(b"FBCCMAP1", 1, 0, n, m, 0, &s)
}

/// A compressed-backend snapshot with the given tables and byte stream.
fn comp_snapshot(n: u64, m: u64, arc_offs: &[u64], byte_offs: &[u64], data: &[u8]) -> Vec<u8> {
    let mut s = Vec::new();
    for &o in arc_offs {
        s.extend_from_slice(&o.to_le_bytes());
    }
    for &o in byte_offs {
        s.extend_from_slice(&o.to_le_bytes());
    }
    s.extend_from_slice(data);
    snapshot_file(b"FBCCMAP1", 2, 0, n, m, data.len() as u64, &s)
}

/// LEB128-encode `x` (mirrors the crate's internal writer).
fn varint(mut x: u64) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x != 0 {
            out.push(b | 0x80);
        } else {
            out.push(b);
            break;
        }
    }
    out
}

fn assert_snapshot_invalid(bytes: &[u8], what: &str) {
    let f = TmpFile::write(&format!("snap_{}", what.replace(' ', "_")), bytes);
    match load_snapshot(&f.0) {
        Ok(_) => panic!("{what}: loaded successfully"),
        Err(e) => assert_eq!(
            e.kind(),
            ErrorKind::InvalidData,
            "{what}: wrong error kind ({e})"
        ),
    }
}

#[test]
fn snapshot_bad_magic_version_and_backend_are_rejected() {
    let good = flat_snapshot(2, 2, &[0, 1, 2], &[1, 0]);
    let mut bad_magic = good.clone();
    bad_magic[..8].copy_from_slice(b"FBCCMAP2"); // future format version
    assert_snapshot_invalid(&bad_magic, "wrong version magic");
    bad_magic[..8].copy_from_slice(b"GARBAGE!");
    assert_snapshot_invalid(&bad_magic, "bad magic");
    assert_snapshot_invalid(
        &snapshot_file(b"FBCCMAP1", 3, 0, 0, 0, 0, &[0u8; 8]),
        "unknown backend tag",
    );
    assert_snapshot_invalid(
        &snapshot_file(b"FBCCMAP1", 1, 7, 0, 0, 0, &[0u8; 8]),
        "nonzero reserved field",
    );
}

#[test]
fn snapshot_truncation_and_oversize_are_rejected() {
    let good = flat_snapshot(2, 2, &[0, 1, 2], &[1, 0]);
    assert_snapshot_invalid(&good[..good.len() - 1], "truncated by one byte");
    assert_snapshot_invalid(&good[..20], "truncated inside header");
    let mut padded = good.clone();
    padded.extend_from_slice(b"junk");
    assert_snapshot_invalid(&padded, "trailing garbage");
    // Header promises more sections than the file holds: offsets past EOF.
    assert_snapshot_invalid(
        &snapshot_file(b"FBCCMAP1", 1, 0, 1 << 40, 0, 0, &[]),
        "offset table past eof",
    );
}

#[test]
fn snapshot_attacker_sized_headers_are_rejected() {
    // n at the id-space limit and sizes that overflow the length math
    // must error before any table is touched.
    assert_snapshot_invalid(
        &snapshot_file(b"FBCCMAP1", 1, 0, u32::MAX as u64, 0, 0, &[]),
        "vertex count exceeds id space",
    );
    assert_snapshot_invalid(
        &snapshot_file(b"FBCCMAP1", 1, 0, u64::MAX / 8, u64::MAX / 8, 0, &[]),
        "section size overflow",
    );
    assert_snapshot_invalid(
        &snapshot_file(b"FBCCMAP1", 2, 0, 2, 2, u64::MAX / 8, &[0u8; 48]),
        "compressed payload overflow",
    );
}

#[test]
fn snapshot_flat_bad_tables_are_rejected() {
    assert_snapshot_invalid(
        &flat_snapshot(2, 2, &[0, 2, 1], &[1, 0]),
        "decreasing offsets",
    );
    assert_snapshot_invalid(
        &flat_snapshot(2, 2, &[1, 2, 2], &[1, 0]),
        "first offset nonzero",
    );
    assert_snapshot_invalid(
        &flat_snapshot(2, 2, &[0, 1, 1], &[1, 0]),
        "last offset below m",
    );
    assert_snapshot_invalid(
        &flat_snapshot(2, 2, &[0, 1, 2], &[1, 9]),
        "arc out of range",
    );
    // A flat snapshot must not claim a compressed payload.
    let mut s = Vec::new();
    for &o in &[0u64, 1, 2] {
        s.extend_from_slice(&o.to_le_bytes());
    }
    for &a in &[1u32, 0] {
        s.extend_from_slice(&a.to_le_bytes());
    }
    s.push(0);
    assert_snapshot_invalid(
        &snapshot_file(b"FBCCMAP1", 1, 0, 2, 2, 1, &s),
        "flat with payload",
    );
}

#[test]
fn snapshot_compressed_corrupt_streams_are_rejected() {
    // Unterminated varint: a lone continuation byte where vertex 0's
    // single-neighbor stream should be.
    assert_snapshot_invalid(
        &comp_snapshot(1, 1, &[0, 1], &[0, 1], &[0x80]),
        "varint overrun",
    );
    // Neighbor id out of range: head decodes to vertex 5 in a 1-vertex
    // graph (zigzag(5 - 0) = 10).
    assert_snapshot_invalid(
        &comp_snapshot(1, 1, &[0, 1], &[0, 1], &[10]),
        "decoded id out of range",
    );
    // Stream longer than the degree needs: exact-consumption check.
    assert_snapshot_invalid(
        &comp_snapshot(1, 1, &[0, 2], &[0, 2], &[0, 0]),
        "stream not fully consumed",
    );
    // Truncated block: byte_offsets promise two bytes of stream for two
    // neighbors but the gap varint after the head is missing.
    assert_snapshot_invalid(
        &comp_snapshot(1, 2, &[0, 2], &[0, 1], &[0]),
        "truncated block",
    );
    // Byte offsets that decrease.
    assert_snapshot_invalid(
        &comp_snapshot(2, 2, &[0, 1, 2], &[2, 1, 2], &[0, 0]),
        "decreasing byte offsets",
    );
}

#[test]
fn snapshot_compressed_extreme_varints_are_rejected() {
    // A gap >= 2^63 must stay unsigned during validation: after head 5,
    // gap u64::MAX - 1 reinterpreted as i64 is -2, which would land back
    // in range as neighbor 3 and smuggle the unsorted list [5, 3] past
    // validation (and panic the overflow-checked decoder).
    let mut data = varint(10); // zigzag(5 - 0): block head = 5
    data.extend(varint(u64::MAX - 1));
    let len = data.len() as u64;
    assert_snapshot_invalid(
        &comp_snapshot(
            6,
            2,
            &[0, 2, 2, 2, 2, 2, 2],
            &[0, len, len, len, len, len, len],
            &data,
        ),
        "wrapping gap",
    );
    // A zigzag head decoding to i64::MAX: `v + unzigzag` overflows i64,
    // so reconstruction must widen rather than panic in checked builds.
    let data = varint(u64::MAX - 1); // unzigzag = i64::MAX
    let len = data.len() as u64;
    assert_snapshot_invalid(
        &comp_snapshot(1, 1, &[0, 1], &[0, len], &data),
        "head overflows i64",
    );
    // And the i64::MIN side.
    let data = varint(u64::MAX); // unzigzag = i64::MIN
    let len = data.len() as u64;
    assert_snapshot_invalid(
        &comp_snapshot(1, 1, &[0, 1], &[0, len], &data),
        "head underflows i64",
    );
}

#[test]
fn snapshot_corrupted_real_file_is_rejected_not_panicking() {
    // Corrupt a genuine compressed snapshot's final stream byte into a
    // continuation byte: the full-file validation pass must catch it.
    let cg = CompressedGraph::from_graph(&cycle(50));
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fastbcc_io_malformed_corrupt_{}",
        std::process::id()
    ));
    save_snapshot_compressed(&cg, &p).unwrap();
    let mut bytes = std::fs::read(&p).unwrap();
    std::fs::remove_file(&p).ok();
    *bytes.last_mut().unwrap() = 0x80;
    assert_snapshot_invalid(&bytes, "corrupted real stream");
}

#[test]
fn snapshot_roundtrips_still_work_after_hardening() {
    let g = barbell(6, 4);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fastbcc_io_malformed_snap_rt_{}",
        std::process::id()
    ));
    save_snapshot(&g, &p).unwrap();
    let mg = load_snapshot(&p).unwrap();
    match mg {
        fastbcc_graph::MappedGraph::Flat(f) => assert_eq!(f.to_graph(), g),
        _ => panic!("flat snapshot loaded as compressed"),
    }
    let cg = CompressedGraph::from_graph(&g);
    save_snapshot_compressed(&cg, &p).unwrap();
    let mg = load_snapshot(&p).unwrap();
    match mg {
        fastbcc_graph::MappedGraph::Compressed(c) => assert_eq!(c.to_compressed(), cg),
        _ => panic!("compressed snapshot loaded as flat"),
    }
    std::fs::remove_file(&p).ok();
}

#[test]
fn text_roundtrip_still_works_after_hardening() {
    let g = windmill(7);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fastbcc_io_malformed_rt_txt_{}",
        std::process::id()
    ));
    save_adjacency_text(&g, &p).unwrap();
    assert_eq!(load_adjacency_text(&p).unwrap(), g);
    std::fs::remove_file(&p).ok();
}
