//! Regression tests: malformed graph files must come back as
//! `Err(InvalidData)` — never a panic, never an abort from an
//! attacker-sized pre-reservation, never a silently corrupt `Graph`.

use fastbcc_graph::generators::classic::{barbell, windmill};
use fastbcc_graph::io::{load_adjacency_text, load_binary, save_adjacency_text, save_binary};
use std::io::ErrorKind;
use std::path::PathBuf;

struct TmpFile(PathBuf);

impl TmpFile {
    fn write(name: &str, bytes: &[u8]) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "fastbcc_io_malformed_{name}_{}",
            std::process::id()
        ));
        std::fs::write(&p, bytes).unwrap();
        Self(p)
    }
}

impl Drop for TmpFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// A syntactically valid binary file for the given header and payload.
fn binary_file(n: u64, m: u64, offsets: &[u64], arcs: &[u32]) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(b"FBCCGRv1");
    b.extend_from_slice(&n.to_le_bytes());
    b.extend_from_slice(&m.to_le_bytes());
    for &o in offsets {
        b.extend_from_slice(&o.to_le_bytes());
    }
    for &a in arcs {
        b.extend_from_slice(&a.to_le_bytes());
    }
    b
}

fn assert_invalid(res: std::io::Result<fastbcc_graph::Graph>, what: &str) {
    match res {
        Ok(_) => panic!("{what}: loaded successfully"),
        Err(e) => assert_eq!(
            e.kind(),
            ErrorKind::InvalidData,
            "{what}: wrong error kind ({e})"
        ),
    }
}

// --- binary format ---------------------------------------------------------

#[test]
fn binary_attacker_sized_vertex_count_is_rejected() {
    // n = u64::MAX would previously drive a Vec::with_capacity(n + 1)
    // abort; the length check must reject it before any allocation.
    let f = TmpFile::write("huge_n", &binary_file(u64::MAX - 1, 0, &[], &[]));
    assert_invalid(load_binary(&f.0), "huge n");
    // Same for an n whose offset table would overflow the length math.
    let f = TmpFile::write("ovf_n", &binary_file(u64::MAX / 8, 0, &[], &[]));
    assert_invalid(load_binary(&f.0), "overflowing offset table");
}

#[test]
fn binary_arc_count_overflow_is_rejected() {
    // m * 4 overflows u64: must error, not wrap to a tiny allocation.
    let f = TmpFile::write("ovf_m", &binary_file(2, u64::MAX / 2, &[0, 0, 0], &[]));
    assert_invalid(load_binary(&f.0), "overflowing arc table");
}

#[test]
fn binary_truncated_and_oversized_files_are_rejected() {
    let good = binary_file(2, 2, &[0, 1, 2], &[1, 0]);
    let f = TmpFile::write("trunc", &good[..good.len() - 3]);
    assert_invalid(load_binary(&f.0), "truncated file");
    let mut padded = good.clone();
    padded.extend_from_slice(b"junk");
    let f = TmpFile::write("padded", &padded);
    assert_invalid(load_binary(&f.0), "trailing garbage");
}

#[test]
fn binary_bad_offsets_are_rejected() {
    // Non-monotone (decreasing) offsets.
    let f = TmpFile::write("decrease", &binary_file(2, 2, &[0, 2, 1], &[1, 0]));
    assert_invalid(load_binary(&f.0), "decreasing offsets");
    // Offset beyond m.
    let f = TmpFile::write("beyond", &binary_file(2, 2, &[0, 3, 2], &[1, 0]));
    assert_invalid(load_binary(&f.0), "offset beyond m");
    // Last offset != m.
    let f = TmpFile::write("lastoff", &binary_file(2, 2, &[0, 1, 1], &[1, 0]));
    assert_invalid(load_binary(&f.0), "last offset != m");
    // First offset != 0.
    let f = TmpFile::write("firstoff", &binary_file(2, 2, &[1, 2, 2], &[1, 0]));
    assert_invalid(load_binary(&f.0), "first offset != 0");
}

#[test]
fn binary_out_of_range_arc_is_rejected() {
    let f = TmpFile::write("bigarc", &binary_file(2, 2, &[0, 1, 2], &[1, 7]));
    assert_invalid(load_binary(&f.0), "arc >= n");
}

#[test]
fn binary_roundtrip_still_works_after_hardening() {
    let g = barbell(5, 3);
    let mut p = std::env::temp_dir();
    p.push(format!("fastbcc_io_malformed_rt_{}", std::process::id()));
    save_binary(&g, &p).unwrap();
    assert_eq!(load_binary(&p).unwrap(), g);
    std::fs::remove_file(&p).ok();
}

// --- text format -----------------------------------------------------------

fn text_file(lines: &[&str]) -> Vec<u8> {
    let mut s = String::from("AdjacencyGraph\n");
    for l in lines {
        s.push_str(l);
        s.push('\n');
    }
    s.into_bytes()
}

#[test]
fn text_arc_wider_than_u32_is_rejected() {
    // 2^32 + 1 would previously truncate to the valid-looking id 1.
    let big = (1u64 << 32) + 1;
    let f = TmpFile::write(
        "wide_arc",
        &text_file(&["3", "2", "0", "1", "2", &big.to_string(), "0"]),
    );
    assert_invalid(load_adjacency_text(&f.0), "arc >= 2^32");
}

#[test]
fn text_out_of_range_arc_is_rejected() {
    let f = TmpFile::write("oob_arc", &text_file(&["2", "2", "0", "1", "1", "5"]));
    assert_invalid(load_adjacency_text(&f.0), "arc >= n");
}

#[test]
fn text_offsets_beyond_m_are_rejected() {
    let f = TmpFile::write("off_gt_m", &text_file(&["2", "2", "0", "9", "1", "0"]));
    assert_invalid(load_adjacency_text(&f.0), "offset beyond m");
    let f = TmpFile::write("off_dec", &text_file(&["3", "2", "0", "2", "1", "1", "0"]));
    assert_invalid(load_adjacency_text(&f.0), "decreasing offsets");
    let f = TmpFile::write("off_first", &text_file(&["2", "2", "1", "2", "1", "0"]));
    assert_invalid(load_adjacency_text(&f.0), "first offset != 0");
}

#[test]
fn text_garbage_and_missing_tokens_are_rejected() {
    let f = TmpFile::write("garbage", &text_file(&["2", "x"]));
    assert_invalid(load_adjacency_text(&f.0), "non-numeric token");
    let f = TmpFile::write("negative", &text_file(&["2", "-1"]));
    assert_invalid(load_adjacency_text(&f.0), "negative token");
    let f = TmpFile::write("missing", &text_file(&["4", "2", "0", "0"]));
    assert_invalid(load_adjacency_text(&f.0), "missing tokens");
    let f = TmpFile::write("huge_n_txt", &text_file(&[&u64::MAX.to_string(), "0"]));
    assert_invalid(load_adjacency_text(&f.0), "huge n");
}

#[test]
fn text_roundtrip_still_works_after_hardening() {
    let g = windmill(7);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fastbcc_io_malformed_rt_txt_{}",
        std::process::id()
    ));
    save_adjacency_text(&g, &p).unwrap();
    assert_eq!(load_adjacency_text(&p).unwrap(), g);
    std::fs::remove_file(&p).ok();
}
