//! Property-based testing (experiment E8): on arbitrary random graphs,
//! FAST-BCC's output must match the sequential Hopcroft–Tarjan oracle —
//! BCC sets, articulation points, and bridges — and the `O(n)`
//! representation must satisfy its own invariants.

use fast_bcc::baselines::hopcroft_tarjan;
use fast_bcc::prelude::*;
use proptest::prelude::*;

/// Arbitrary graph: up to `nmax` vertices, arbitrary edge pairs (dupes and
/// loops exercised deliberately — the builder must sanitize them).
fn arb_graph(nmax: usize, mmax: usize) -> impl Strategy<Value = Graph> {
    (2..nmax).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as V, 0..n as V), 0..mmax)
            .prop_map(move |edges| builder::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn fast_bcc_matches_oracle(g in arb_graph(48, 120)) {
        let want = hopcroft_tarjan(&g, true);
        let r = fast_bcc(&g, BccOpts::default());
        prop_assert_eq!(r.num_bcc, want.num_bcc);
        prop_assert_eq!(canonical_bccs(&r), want.bccs.unwrap());
        prop_assert_eq!(articulation_points(&r), want.articulation_points);
        let mut got: Vec<(V, V)> =
            bridges(&r).into_iter().map(|(a, b)| (a.min(b), a.max(b))).collect();
        got.sort_unstable();
        prop_assert_eq!(got, want.bridges);
    }

    #[test]
    fn representation_invariants(g in arb_graph(40, 90)) {
        let r = fast_bcc(&g, BccOpts::default());
        let n = g.n();
        // Labels index real vertices; label_count is a correct histogram.
        let mut hist = vec![0u32; n];
        for v in 0..n {
            prop_assert!((r.labels[v] as usize) < n);
            hist[r.labels[v] as usize] += 1;
        }
        prop_assert_eq!(&hist, &r.label_count);
        // A head never belongs to the label it heads.
        for l in 0..n {
            let h = r.head[l];
            if h != NONE {
                prop_assert_ne!(r.labels[h as usize], l as u32);
            }
        }
        // Heads are articulation points or tree roots (Lemma 4.4).
        let aps: std::collections::HashSet<V> =
            articulation_points(&r).into_iter().collect();
        for l in 0..n {
            let h = r.head[l];
            if h != NONE && r.is_bcc_label(l as u32) {
                let is_root = r.tags.parent[h as usize] == NONE;
                prop_assert!(
                    aps.contains(&h) || is_root,
                    "head {} neither articulation nor root", h
                );
            }
        }
    }

    #[test]
    fn biconnected_pairs_share_labels(g in arb_graph(28, 60)) {
        // Vertices in one oracle BCC of size >= 3 must be pairwise
        // label-connected in our representation: all non-head members share
        // a label.
        let r = fast_bcc(&g, BccOpts::default());
        let want = hopcroft_tarjan(&g, true);
        for bcc in want.bccs.unwrap() {
            if bcc.len() < 2 {
                continue;
            }
            // Each our-BCC (label class ∪ head) must contain this set
            // exactly once; weaker but sufficient: the set of our canonical
            // BCCs contains `bcc` (already checked in the equality test),
            // so here we check the label arithmetic directly: members minus
            // at most one head share one label.
            let mut labels: Vec<u32> = Vec::new();
            for &v in &bcc {
                labels.push(r.labels[v as usize]);
            }
            labels.sort_unstable();
            labels.dedup();
            prop_assert!(
                labels.len() <= 2,
                "BCC {:?} spans {} labels", bcc, labels.len()
            );
        }
    }

    #[test]
    fn same_bcc_query_matches_oracle(g in arb_graph(24, 50)) {
        let r = fast_bcc(&g, BccOpts::default());
        let want = hopcroft_tarjan(&g, true).bccs.unwrap();
        let n = g.n();
        // Oracle pair-membership matrix.
        let mut share = vec![false; n * n];
        for bcc in &want {
            for &a in bcc {
                for &b in bcc {
                    share[a as usize * n + b as usize] = true;
                }
            }
        }
        for u in 0..n as V {
            for v in 0..n as V {
                if u != v {
                    prop_assert_eq!(
                        r.same_bcc(u, v),
                        share[u as usize * n + v as usize],
                        "pair ({}, {})", u, v
                    );
                }
            }
        }
    }

    #[test]
    fn block_cut_tree_is_a_forest(g in arb_graph(40, 90)) {
        let r = fast_bcc(&g, BccOpts::default());
        let t = fast_bcc::core::block_cut_tree::block_cut_tree(&r);
        t.verify_forest();
        // Cuts are exactly the articulation points.
        prop_assert_eq!(t.cuts, articulation_points(&r));
        // Every block node is a real BCC label; counts match.
        prop_assert_eq!(t.blocks.len(), r.num_bcc);
    }

    #[test]
    fn seq_and_parallel_schemes_agree(g in arb_graph(32, 70)) {
        let a = fast_bcc(&g, BccOpts::default());
        let b = fast_bcc(&g, BccOpts { scheme: CcScheme::UfAsync, ..Default::default() });
        let c = with_threads(1, || fast_bcc(&g, BccOpts::default()));
        prop_assert_eq!(a.num_bcc, b.num_bcc);
        prop_assert_eq!(a.num_bcc, c.num_bcc);
        prop_assert_eq!(canonical_bccs(&a), canonical_bccs(&b));
        prop_assert_eq!(canonical_bccs(&a), canonical_bccs(&c));
    }
}
