//! Acceptance tests for the pre-counted edgeMap frontier layer: the
//! engine's reserved scratch no longer scales with the worker ceiling
//! (the old per-worker arenas reserved `O(n)` per possible worker — an
//! `O(n · P)` envelope), warm solves stay allocation-free at multi-worker
//! budgets, and the total pooled workspace fits a linear `c · (n + m)`
//! budget — the same gate the `bench-smoke` CI job enforces over the
//! Tab. 2 suite.

use fast_bcc::prelude::*;

/// The linear-space budget of the pooled workspace — the shared
/// definition the `bench-smoke` gate also enforces.
use fast_bcc::core::space::workspace_budget_bytes as scratch_budget;

/// Reserved workspace bytes after two solves of `g` under a worker
/// budget of `k`, asserting the second solve allocated nothing.
fn warm_workspace_bytes(g: &Graph, k: usize) -> usize {
    with_threads(k, || {
        let opts = BccOpts {
            // Local search off: the hash bag is the one pooled buffer
            // whose capacity legitimately varies with the worker count
            // (it is a granularity control); everything else must be a
            // function of (n, m) alone.
            local_search: false,
            ..Default::default()
        };
        let mut engine = BccEngine::new(opts);
        engine.solve(g);
        let r = engine.solve(g);
        assert_eq!(r.fresh_alloc_bytes, 0, "warm solve allocated at budget {k}");
        engine.workspace().heap_bytes()
    })
}

/// The headline acceptance criterion: reserved scratch bytes are
/// identical under worker budgets 1 and 8 — nothing in the frontier
/// layer reserves per-worker `O(n)` arenas anymore.
#[test]
fn workspace_bytes_identical_across_worker_budgets() {
    for g in [
        generators::rmat(11, 8_000, 3),
        generators::grid2d(60, 60, false),
        generators::classic::star(4_000),
    ] {
        let b1 = warm_workspace_bytes(&g, 1);
        let b8 = warm_workspace_bytes(&g, 8);
        assert_eq!(
            b1,
            b8,
            "reserved workspace depends on the worker budget (n={})",
            g.n()
        );
    }
}

/// The workspace fits the linear envelope on shapes that stress both
/// modes: a dense-frontier star, a high-diameter grid, and a power-law
/// rmat graph.
#[test]
fn workspace_fits_linear_space_budget() {
    for g in [
        generators::rmat(12, 30_000, 7),
        generators::grid2d(100, 100, true),
        generators::classic::star(20_000),
        generators::classic::path(50_000),
    ] {
        let bytes = warm_workspace_bytes(&g, 4);
        let budget = scratch_budget(g.n(), g.m_undirected());
        assert!(
            bytes <= budget,
            "workspace {} bytes exceeds the {} budget (n={}, m={})",
            bytes,
            budget,
            g.n(),
            g.m_undirected()
        );
    }
}

/// Warm re-solves report zero fresh bytes at several explicit budgets —
/// including ones past the hardware parallelism — with the default
/// options (local search enabled), matching the CI matrix's
/// `FASTBCC_THREADS` sweep.
#[test]
fn warm_solves_allocation_free_at_every_budget() {
    let g = generators::grid2d_sampled(80, 80, 0.95, 0xED6E);
    for k in [1usize, 2, 4, 8] {
        with_threads(k, || {
            let mut engine = BccEngine::new(BccOpts::default());
            engine.solve(&g);
            for round in 0..2 {
                let r = engine.solve(&g);
                assert_eq!(
                    r.fresh_alloc_bytes, 0,
                    "budget {k}, round {round} allocated"
                );
            }
        });
    }
}

/// On the bench suite's high-diameter grid rows, the LDD's early rounds
/// (the big center-injection waves) legitimately cross the `m/20`
/// density threshold — the regime the `BENCH_edgemap_frontier.json`
/// artifact records dense-mode engagement for.
#[test]
fn dense_mode_engages_on_high_diameter_grid() {
    use fast_bcc::connectivity::ldd::{ldd_filtered_in, LddOpts, LddScratch};
    let g = generators::grid2d(100, 100, false);
    let mut scratch = LddScratch::new();
    ldd_filtered_in(&g, LddOpts::default(), &|_, _| true, &mut scratch, true);
    assert!(scratch.dense_rounds() > 0, "grid LDD never went bottom-up");
}
