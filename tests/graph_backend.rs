//! Cross-backend equivalence (PR 10 acceptance): every
//! [`fast_bcc::graph::GraphView`] backend — flat CSR, compressed blocks,
//! and the zero-copy mmap-loaded snapshot of each — must produce the same
//! solve result and the same answer to every query kind (`SameBcc`,
//! `IsArticulation`, `IsBridge`, `CutVerticesOnPath`), at every thread
//! budget. The flat in-RAM [`Graph`] solved through the one-shot
//! `fast_bcc` entry point is the reference; each other backend goes
//! through [`BccEngine::solve_view`], i.e. the per-block streaming decode
//! path the compressed backends monomorphize.

use fast_bcc::graph::{
    load_snapshot, save_snapshot, save_snapshot_compressed, CompressedGraph, GraphView,
};
use fast_bcc::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique scratch directory per check (tests run in parallel threads).
fn scratch_dir() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "fastbcc-backend-eq-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

/// Reference answers computed once from the flat graph.
struct Reference {
    num_bcc: usize,
    num_cc: usize,
    sets: Vec<Vec<V>>,
    queries: Vec<Query>,
    answers: Vec<QueryAnswer>,
}

fn reference(g: &Graph, tag: &str) -> Reference {
    let r = fast_bcc(g, BccOpts::default());
    let t = block_cut_tree(&r);
    let ix = BccIndex::build(&r, &t);
    let queries = if g.n() > 0 {
        random_mixed_batch(g.n(), 96, 0xB1C0 ^ g.n() as u64)
    } else {
        Vec::new()
    };
    let answers = queries.iter().map(|&q| ix.answer(q)).collect();
    assert!(!tag.is_empty());
    Reference {
        num_bcc: r.num_bcc,
        num_cc: r.num_cc,
        sets: canonical_bccs(&r),
        queries,
        answers,
    }
}

/// Solve `g` through the view-generic engine path and compare everything
/// against the flat reference.
fn check_one<G: GraphView>(g: &G, want: &Reference, tag: &str, threads: usize) {
    let ctx = format!("{tag}/{}/p{threads}", g.backend_name());
    let mut engine = BccEngine::new(BccOpts::default());
    let r = engine.solve_view(g);
    assert_eq!(r.num_bcc, want.num_bcc, "{ctx}: num_bcc");
    assert_eq!(r.num_cc, want.num_cc, "{ctx}: num_cc");
    assert_eq!(canonical_bccs(r), want.sets, "{ctx}: BCC vertex sets");
    let t = block_cut_tree(r);
    let ix = BccIndex::build(r, &t);
    for (q, a) in want.queries.iter().zip(&want.answers) {
        assert_eq!(ix.answer(*q), *a, "{ctx}: {q:?}");
    }
}

/// The whole acceptance matrix for one input graph: four backends × the
/// given thread budgets, each compared against the flat one-shot solve.
fn check_backends(g: &Graph, tag: &str, budgets: &[usize]) {
    let want = reference(g, tag);

    let cg = CompressedGraph::from_graph(g);
    let dir = scratch_dir();
    let flat_path = dir.join("g.flat.fbcc");
    let comp_path = dir.join("g.comp.fbcc");
    save_snapshot(g, &flat_path).expect("save flat snapshot");
    save_snapshot_compressed(&cg, &comp_path).expect("save compressed snapshot");
    let mflat = load_snapshot(&flat_path).expect("load flat snapshot");
    let mcomp = load_snapshot(&comp_path).expect("load compressed snapshot");

    for &p in budgets {
        with_threads(p, || {
            check_one(g, &want, tag, p);
            check_one(&cg, &want, tag, p);
            check_one(&mflat, &want, tag, p);
            check_one(&mcomp, &want, tag, p);
        });
    }
    // Snapshots are memory-mapped; drop the maps before unlinking so the
    // cleanup order is explicit (harmless on unix either way).
    drop((mflat, mcomp));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zoo_backends_agree_at_every_thread_budget() {
    use fast_bcc::graph::generators::classic::*;
    use fast_bcc::graph::generators::{grid2d, rmat};
    for (g, tag) in [
        (path(9), "path"),
        (cycle(8), "cycle"),
        (star(7), "star"),
        (complete(6), "complete"),
        (windmill(4), "windmill"),
        (barbell(4, 2), "barbell"),
        (clique_chain(4, 3), "clique-chain"),
        (binary_tree(15), "binary-tree"),
        (theta(2, 3, 4), "theta"),
        (petersen(), "petersen"),
        (ladder(5), "ladder"),
        (wheel(7), "wheel"),
        (grid2d(4, 5, false), "grid"),
        (rmat(6, 200, 42), "rmat6"),
        (
            disjoint_union(&[&windmill(3), &path(4), &cycle(5), &Graph::empty(3)]),
            "mixture",
        ),
        (Graph::empty(4), "empty-4"),
        (path(2), "single-edge"),
    ] {
        check_backends(&g, tag, &[1, 2, 8]);
    }
}

#[test]
fn larger_rmat_backends_agree() {
    // Big enough to force multi-block adjacency lists (BLOCK = 64) and a
    // dense edgeMap phase, so the per-block decode inside the hot loops is
    // exercised rather than just the one-block fast path.
    let g = fast_bcc::graph::generators::rmat(11, 40_000, 7);
    check_backends(&g, "rmat11", &[1, 8]);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Arbitrary graphs (dupes and self-loops exercised deliberately):
    /// all four backends must agree with the flat reference at serial and
    /// parallel budgets.
    #[test]
    fn backends_agree_on_random_graphs(g in arb_graph(40, 100)) {
        check_backends(&g, "proptest", &[1, 8]);
    }
}

/// Arbitrary graph: up to `nmax` vertices, arbitrary edge pairs.
fn arb_graph(nmax: usize, mmax: usize) -> impl Strategy<Value = Graph> {
    (2..nmax).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as V, 0..n as V), 0..mmax)
            .prop_map(move |edges| builder::from_edges(n, &edges))
    })
}
