//! Engine-reuse property tests: a scratch-pooled [`BccEngine`] solving
//! graph A and then graph B must behave exactly like fresh [`fast_bcc`]
//! calls — bit-identical labels/heads/counts under a single worker (where
//! execution is deterministic), semantically identical always — and both
//! must agree with the sequential Hopcroft–Tarjan oracle. The second solve
//! of a same-shaped input must not grow the workspace at all.

use fast_bcc::baselines::hopcroft_tarjan;
use fast_bcc::prelude::*;
use proptest::prelude::*;

/// Arbitrary graph: up to `nmax` vertices, arbitrary edge pairs (dupes and
/// loops exercised deliberately — the builder must sanitize them).
fn arb_graph(nmax: usize, mmax: usize) -> impl Strategy<Value = Graph> {
    (2..nmax).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as V, 0..n as V), 0..mmax)
            .prop_map(move |edges| builder::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn engine_reuse_is_bit_identical_to_fresh_calls(
        a in arb_graph(40, 100),
        b in arb_graph(40, 100),
    ) {
        // One worker: identical schedules, so even the racy Last-CC labels
        // must come out bit-identical between pooled and fresh solves.
        let checked = with_threads(1, || -> Result<(), TestCaseError> {
            let mut engine = BccEngine::new(BccOpts::default());
            for g in [&a, &b] {
                let fresh = fast_bcc(g, BccOpts::default());
                let pooled = engine.solve(g);
                prop_assert_eq!(pooled.num_bcc, fresh.num_bcc);
                prop_assert_eq!(pooled.num_cc, fresh.num_cc);
                prop_assert_eq!(&pooled.labels, &fresh.labels);
                prop_assert_eq!(&pooled.head, &fresh.head);
                prop_assert_eq!(&pooled.label_count, &fresh.label_count);
                prop_assert_eq!(&pooled.tags.parent, &fresh.tags.parent);
                prop_assert_eq!(&pooled.tags.low, &fresh.tags.low);
                prop_assert_eq!(&pooled.tags.high, &fresh.tags.high);

                // Cross-check both against the sequential oracle.
                let want = hopcroft_tarjan(g, true);
                prop_assert_eq!(pooled.num_bcc, want.num_bcc);
                let pooled_aps = articulation_points(pooled);
                prop_assert_eq!(&pooled_aps, &want.articulation_points);
                prop_assert_eq!(&articulation_points(&fresh), &pooled_aps);
                prop_assert_eq!(canonical_bccs(pooled), want.bccs.unwrap());
            }
            Ok(())
        });
        checked?;
    }

    #[test]
    fn engine_is_semantically_stable_under_default_parallelism(
        g in arb_graph(36, 90),
    ) {
        // Under real parallelism label values may differ run to run (CAS
        // races pick different representatives), but the BCC structure may
        // not.
        let fresh = fast_bcc(&g, BccOpts::default());
        let mut engine = BccEngine::new(BccOpts::default());
        engine.solve(&g);
        let again = engine.solve(&g);
        prop_assert_eq!(again.num_bcc, fresh.num_bcc);
        prop_assert_eq!(again.num_cc, fresh.num_cc);
        prop_assert_eq!(canonical_bccs(again), canonical_bccs(&fresh));
        prop_assert_eq!(articulation_points(again), articulation_points(&fresh));
    }

    #[test]
    fn repeat_solves_never_grow_the_workspace(g in arb_graph(48, 140)) {
        let grew = with_threads(1, || -> Result<(), TestCaseError> {
            let mut engine = BccEngine::new(BccOpts::default());
            engine.solve(&g);
            for round in 0..2 {
                let r = engine.solve(&g);
                prop_assert_eq!(r.fresh_alloc_bytes, 0, "round {} grew the workspace", round);
            }
            Ok(())
        });
        grew?;
    }
}
