//! Medium-scale integration tests: the suite's generator families at
//! 10⁴–10⁶ edges, checking cross-algorithm agreement on counts (full set
//! comparison is covered at smaller scale in `cross_algorithm.rs`) and
//! the structural invariants the paper's Tab. 2 reports.

use fast_bcc::baselines::{bfs_bcc, hopcroft_tarjan, tarjan_vishkin};
use fast_bcc::graph::generators::classic::path;
use fast_bcc::graph::generators::{grid2d, grid2d_sampled, knn, random_geometric, rmat};
use fast_bcc::prelude::*;

fn check_counts(g: &Graph, tag: &str) {
    let want = hopcroft_tarjan(g, false);
    let r = fast_bcc(g, BccOpts::default());
    assert_eq!(r.num_bcc, want.num_bcc, "{tag}: fast");
    assert_eq!(
        articulation_points(&r).len(),
        want.articulation_points.len(),
        "{tag}: #APs"
    );
    let b = bfs_bcc(g, 5);
    assert_eq!(b.num_bcc, want.num_bcc, "{tag}: bfs");
    let tv = tarjan_vishkin(g, 5);
    assert_eq!(tv.num_bcc, want.num_bcc, "{tag}: tv");
}

#[test]
fn grid_100k() {
    let g = grid2d(300, 340, true);
    // A torus is 2-connected: exactly one BCC.
    let r = fast_bcc(&g, BccOpts::default());
    assert_eq!(r.num_bcc, 1);
    assert_eq!(largest_bcc_size(&r), g.n());
    check_counts(&g, "torus-100k");
}

#[test]
fn sampled_grid_200k() {
    let g = grid2d_sampled(350, 350, 0.6, 9);
    check_counts(&g, "sampled-grid");
}

#[test]
fn chain_1m() {
    // The paper's Chn input: every vertex an articulation point, every
    // edge a bridge.
    let n = 1_000_000;
    let g = path(n);
    let r = fast_bcc(&g, BccOpts::default());
    assert_eq!(r.num_bcc, n - 1);
    assert_eq!(articulation_points(&r).len(), n - 2);
    assert_eq!(bridges(&r).len(), n - 1);
}

#[test]
fn rmat_power_law() {
    let g = rmat(14, 120_000, 11);
    check_counts(&g, "rmat14");
    // Social-graph shape: one giant BCC holding most non-isolated vertices.
    let r = fast_bcc(&g, BccOpts::default());
    let giant = largest_bcc_size(&r);
    assert!(
        giant * 3 > g.n(),
        "expected giant BCC, got {} of {}",
        giant,
        g.n()
    );
}

#[test]
fn knn_medium() {
    let g = knn(40_000, 5, 13);
    check_counts(&g, "knn5");
}

#[test]
fn road_like_medium() {
    let g = random_geometric(
        40_000,
        fast_bcc::graph::generators::geometric::road_like_radius(40_000),
        15,
    );
    check_counts(&g, "road");
}

#[test]
fn span_shape_on_large_diameter() {
    // The paper's core claim is about *span*: BFS-based rooting needs
    // Θ(diam) synchronous rounds while FAST-BCC's phases are polylog. On a
    // 2-core machine wall-clock barely shows this (each near-empty BFS
    // round costs ~100ns), so we assert the structural quantity directly:
    // round counts, which are what multiply with per-round scheduling cost
    // on real multicores (Fig. 4/5).
    let n = 400_000;
    let g = path(n);

    let bfs = fast_bcc::connectivity::bfs::bfs_forest(&g);
    assert!(
        bfs.rounds >= n - 2,
        "BFS rounds {} must be Θ(diam) on a chain",
        bfs.rounds
    );

    let ldd = fast_bcc::connectivity::ldd::ldd(&g, fast_bcc::connectivity::ldd::LddOpts::default());
    // polylog regime: generous bound log²(n) ≈ 350 for n = 4·10⁵.
    let bound = {
        let l = (n as f64).log2();
        (l * l) as usize
    };
    assert!(
        ldd.rounds <= bound,
        "LDD rounds {} should be polylog (≤ {bound})",
        ldd.rounds
    );

    // And end-to-end outputs still agree.
    let fast = fast_bcc(&g, BccOpts::default());
    let b = bfs_bcc(&g, 3);
    assert_eq!(fast.num_bcc, b.num_bcc);
}
