//! Query-index acceptance tests: every [`BccIndex`] answer is checked
//! against ground truth derived from the sequential Hopcroft–Tarjan oracle
//! (membership sets for `same_bcc`, the articulation/bridge lists, and a
//! brute-force "remove w, is u still connected to v?" sweep for the path
//! separator counts), on the generator zoo and on random proptest graphs.
//! Batched answering must be bit-identical to sequential answering at
//! every thread budget, and warm batches must allocate nothing.

use fast_bcc::baselines::hopcroft_tarjan;
use fast_bcc::prelude::*;
use proptest::prelude::*;

fn build_index(g: &Graph) -> (BccResult, BccIndex) {
    let r = fast_bcc(g, BccOpts::default());
    let t = block_cut_tree(&r);
    let ix = BccIndex::build(&r, &t);
    (r, ix)
}

/// BFS connectivity from `src` to `dst`, optionally with one vertex removed.
fn connected_without(g: &Graph, src: V, dst: V, removed: Option<V>) -> bool {
    if Some(src) == removed || Some(dst) == removed {
        return false;
    }
    if src == dst {
        return true;
    }
    let mut seen = vec![false; g.n()];
    let mut queue = std::collections::VecDeque::from([src]);
    seen[src as usize] = true;
    while let Some(u) = queue.pop_front() {
        for &w in g.neighbors(u) {
            if Some(w) == removed || seen[w as usize] {
                continue;
            }
            if w == dst {
                return true;
            }
            seen[w as usize] = true;
            queue.push_back(w);
        }
    }
    false
}

/// Oracle for `cut_vertices_on_path`: count articulation points (from the
/// HT list) that separate `u` from `v`; `None` when no path exists.
fn separators_truth(g: &Graph, aps: &[V], u: V, v: V) -> Option<u32> {
    if u == v {
        return Some(0);
    }
    if !connected_without(g, u, v, None) {
        return None;
    }
    Some(
        aps.iter()
            .filter(|&&w| w != u && w != v && !connected_without(g, u, v, Some(w)))
            .count() as u32,
    )
}

/// Oracle for `same_bcc` from HT's explicit component vertex sets.
fn same_bcc_truth(bccs: &[Vec<V>], u: V, v: V) -> bool {
    bccs.iter().any(|b| b.contains(&u) && b.contains(&v))
}

/// Check every query kind over all vertex pairs of a small graph.
fn check_all_pairs(g: &Graph) -> Result<(), TestCaseError> {
    let (_, ix) = build_index(g);
    let ht = hopcroft_tarjan(g, true);
    let bccs = ht.bccs.as_ref().unwrap();
    let n = g.n() as V;
    for v in 0..n {
        prop_assert_eq!(
            ix.is_articulation(v),
            ht.articulation_points.contains(&v),
            "is_articulation({})",
            v
        );
    }
    for u in 0..n {
        for v in 0..n {
            if u != v {
                prop_assert_eq!(
                    ix.same_bcc(u, v),
                    same_bcc_truth(bccs, u, v),
                    "same_bcc({}, {})",
                    u,
                    v
                );
            }
            prop_assert_eq!(
                ix.is_bridge(u, v),
                ht.bridges.contains(&(u.min(v), u.max(v))) && u != v,
                "is_bridge({}, {})",
                u,
                v
            );
            prop_assert_eq!(
                ix.cut_vertices_on_path(u, v),
                separators_truth(g, &ht.articulation_points, u, v),
                "cut_vertices_on_path({}, {})",
                u,
                v
            );
        }
    }
    Ok(())
}

#[test]
fn zoo_graphs_match_ground_truth() {
    use fast_bcc::graph::generators::classic::*;
    use fast_bcc::graph::generators::{grid2d, rmat};
    for g in [
        path(9),
        cycle(8),
        star(7),
        complete(6),
        windmill(4),
        barbell(4, 2),
        barbell(3, 1),
        clique_chain(4, 3),
        binary_tree(15),
        theta(2, 3, 4),
        petersen(),
        ladder(5),
        wheel(7),
        grid2d(4, 5, false),
        rmat(5, 60, 42),
        disjoint_union(&[&windmill(3), &path(4), &cycle(5), &Graph::empty(3)]),
        Graph::empty(4),
        path(2),
    ] {
        check_all_pairs(&g).unwrap();
    }
}

#[test]
fn batches_are_deterministic_across_thread_budgets() {
    use fast_bcc::graph::generators::{grid2d, rmat};
    for g in [rmat(8, 1200, 9), grid2d(20, 13, true)] {
        let (_, ix) = build_index(&g);
        let queries = random_mixed_batch(g.n(), 4096, 0xBA7C4);
        // Sequential reference: one answer() call per query.
        let want: Vec<QueryAnswer> = queries.iter().map(|&q| ix.answer(q)).collect();
        for budget in [1usize, 2, 4, 8] {
            let got = with_threads(budget, || {
                let mut scratch = QueryScratch::new();
                ix.answer_batch(&queries, &mut scratch).to_vec()
            });
            assert_eq!(got, want, "budget {budget}");
        }
    }
}

#[test]
fn warm_batches_allocate_nothing_at_every_budget() {
    use fast_bcc::graph::generators::rmat;
    let g = rmat(9, 2500, 17);
    let (_, ix) = build_index(&g);
    let queries = random_mixed_batch(g.n(), 8192, 0x5EED);
    // The default budget (FASTBCC_THREADS or hardware) plus pinned ones —
    // the acceptance criterion's {1, 4, default} matrix.
    let run = |scratch: &mut QueryScratch| {
        ix.answer_batch(&queries, scratch);
        let first = scratch.fresh_alloc_bytes();
        for round in 0..3 {
            ix.answer_batch(&queries, scratch);
            assert_eq!(
                scratch.fresh_alloc_bytes(),
                0,
                "warm batch allocated (round {round})"
            );
        }
        first
    };
    let mut scratch = QueryScratch::new();
    let first = run(&mut scratch); // default budget
    assert!(first > 0, "first batch must size the scratch");
    for budget in [1usize, 4] {
        with_threads(budget, || {
            // Same pooled scratch across budgets: still zero fresh bytes.
            ix.answer_batch(&queries, &mut scratch);
            assert_eq!(scratch.fresh_alloc_bytes(), 0, "budget {budget}");
            let mut cold = QueryScratch::with_capacity(queries.len());
            ix.answer_batch(&queries, &mut cold);
            assert_eq!(
                cold.fresh_alloc_bytes(),
                0,
                "pre-sized scratch allocated at budget {budget}"
            );
        });
    }
}

#[test]
fn engine_build_index_matches_standalone_build() {
    use fast_bcc::graph::generators::classic::{clique_chain, windmill};
    let mut engine = BccEngine::new(BccOpts::default());
    for g in [windmill(5), clique_chain(4, 4)] {
        engine.solve(&g);
        let from_engine = engine.build_index();
        let (_, standalone) = build_index(&g);
        let queries = random_mixed_batch(g.n(), 512, 3);
        for &q in &queries {
            assert_eq!(from_engine.answer(q), standalone.answer(q), "{q:?}");
        }
        assert_eq!(from_engine.bytes(), standalone.bytes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn random_graphs_match_ground_truth(
        n in 2usize..24,
        edges in proptest::collection::vec((0u32..24, 0u32..24), 0..60),
    ) {
        let edges: Vec<(V, V)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = builder::from_edges(n, &edges);
        check_all_pairs(&g)?;
    }

    #[test]
    fn random_batches_match_sequential_answers(
        n in 2usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
        seed in 0u64..1000,
    ) {
        let edges: Vec<(V, V)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = builder::from_edges(n, &edges);
        let (_, ix) = build_index(&g);
        let queries = random_mixed_batch(n, 256, seed);
        let mut scratch = QueryScratch::new();
        let got = ix.answer_batch(&queries, &mut scratch).to_vec();
        for (i, (&q, &a)) in queries.iter().zip(got.iter()).enumerate() {
            prop_assert_eq!(a, ix.answer(q), "query {} = {:?}", i, q);
        }
    }
}
