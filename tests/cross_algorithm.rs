//! Cross-algorithm agreement (experiment E8): FAST-BCC, Tarjan–Vishkin,
//! the BFS-skeleton baseline, SM'14-style, and sequential Hopcroft–Tarjan
//! must produce identical canonical BCC partitions on every input.

use fast_bcc::baselines::{bfs_bcc, hopcroft_tarjan, sm14, tarjan_vishkin};
use fast_bcc::graph::generators::classic::*;
use fast_bcc::graph::generators::{grid2d, grid2d_sampled, knn, random_geometric, rmat, web_like};
use fast_bcc::prelude::*;

fn check_all(g: &Graph, tag: &str) {
    let want = hopcroft_tarjan(g, true);
    let want_sets = want.bccs.unwrap();

    for (name, opts) in [
        ("fast/ldd", BccOpts::default()),
        (
            "fast/ldd-nolocal",
            BccOpts {
                local_search: false,
                ..Default::default()
            },
        ),
        (
            "fast/ufasync",
            BccOpts {
                scheme: CcScheme::UfAsync,
                ..Default::default()
            },
        ),
    ] {
        let r = fast_bcc(g, opts);
        assert_eq!(r.num_bcc, want.num_bcc, "{tag}: {name} count");
        assert_eq!(canonical_bccs(&r), want_sets, "{tag}: {name} sets");
        // Derived structures must match the oracle too.
        assert_eq!(
            articulation_points(&r),
            want.articulation_points,
            "{tag}: {name} articulation points"
        );
        let mut got_bridges: Vec<(V, V)> = bridges(&r)
            .into_iter()
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        got_bridges.sort_unstable();
        assert_eq!(got_bridges, want.bridges, "{tag}: {name} bridges");
    }

    let tv = tarjan_vishkin(g, 99);
    assert_eq!(tv.num_bcc, want.num_bcc, "{tag}: TV count");
    assert_eq!(tv.canonical_bccs(), want_sets, "{tag}: TV sets");

    let bfs = bfs_bcc(g, 3);
    assert_eq!(bfs.num_bcc, want.num_bcc, "{tag}: BFS-BCC count");
    assert_eq!(canonical_bccs(&bfs), want_sets, "{tag}: BFS-BCC sets");

    if let Ok(sm) = sm14(g) {
        assert_eq!(sm.num_bcc, want.num_bcc, "{tag}: SM14 count");
        assert_eq!(canonical_bccs(&sm), want_sets, "{tag}: SM14 sets");
    }
}

#[test]
fn classic_zoo() {
    check_all(&path(30), "path");
    check_all(&cycle(17), "cycle");
    check_all(&star(12), "star");
    check_all(&complete(9), "complete");
    check_all(&complete_bipartite(3, 5), "K3,5");
    check_all(&theta(2, 3, 4), "theta");
    check_all(&barbell(5, 3), "barbell");
    check_all(&windmill(8), "windmill");
    check_all(&binary_tree(63), "binary-tree");
    check_all(&ladder(9), "ladder");
    check_all(&wheel(11), "wheel");
    check_all(&petersen(), "petersen");
    check_all(&clique_chain(7, 4), "clique-chain");
}

#[test]
fn degenerate_inputs() {
    check_all(&Graph::empty(0), "empty-0");
    check_all(&Graph::empty(1), "empty-1");
    check_all(&Graph::empty(10), "empty-10");
    check_all(&path(2), "single-edge");
    check_all(&disjoint_union(&[&path(2), &path(2)]), "two-edges");
}

#[test]
fn disconnected_mixtures() {
    check_all(
        &disjoint_union(&[&cycle(6), &path(5), &windmill(3), &Graph::empty(4)]),
        "mixture",
    );
    check_all(
        &disjoint_union(&[&complete(5), &complete(5), &star(7)]),
        "cliques+star",
    );
}

#[test]
fn generated_social_and_web() {
    check_all(&rmat(10, 6_000, 1), "rmat10");
    check_all(&rmat(12, 20_000, 2), "rmat12");
    check_all(&web_like(10, 5_000, 3), "web10");
}

#[test]
fn generated_meshes_and_roads() {
    check_all(&grid2d(17, 23, true), "torus");
    check_all(&grid2d(10, 40, false), "open-grid");
    check_all(&grid2d_sampled(25, 25, 0.6, 5), "sampled-grid");
    check_all(&random_geometric(1500, 0.035, 6), "geometric");
}

#[test]
fn generated_knn_sweep() {
    for k in [1, 2, 3, 6] {
        check_all(&knn(800, k, 7), &format!("knn-k{k}"));
    }
}
