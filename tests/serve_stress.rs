//! Stress and property tests for the `fastbcc-serve` epoch-swapped query
//! service: real OS reader threads hammer `answer_batch` while the
//! rebuilder publishes snapshot after snapshot, and every served batch is
//! checked against a per-version oracle. The invariants pinned here are
//! the ones `docs/serving.md` promises operators:
//!
//! 1. **No reader ever blocks or errors during a swap** — every reader
//!    thread serves batches continuously until told to stop and joins
//!    cleanly.
//! 2. **No torn or mixed batches** — a batch tagged version `v` matches,
//!    answer for answer, a from-scratch solve of version `v`'s graph.
//! 3. **Bounded staleness** — a batch is never older than the version
//!    `current_version()` returned before the load, and a single reader's
//!    versions never move backwards.
//! 4. **Retirement accounting** — after every handle, reader, and the
//!    rebuilder are gone, every published snapshot has been dropped:
//!    nothing leaks, nothing is freed twice.

use fast_bcc::core::query::{random_mixed_batch, Query, QueryAnswer, QueryScratch};
use fast_bcc::core::{BccEngine, BccOpts};
use fast_bcc::graph::generators::classic::{cycle, path, windmill};
use fast_bcc::graph::{builder, Graph, GraphDelta, V};
use fast_bcc::serve::{start, ServeOpts};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Answer `queries` against a from-scratch solve of `g` — the per-version
/// ground truth a served batch must match exactly.
fn oracle(g: &Graph, queries: &[Query]) -> Vec<QueryAnswer> {
    let mut engine = BccEngine::new(BccOpts::default());
    engine.solve(g);
    let index = engine.build_index();
    let mut scratch = QueryScratch::new();
    index.answer_batch(queries, &mut scratch).to_vec()
}

/// Three same-`n` graphs with very different BCC structure, so a torn
/// index (mixing two versions' tables) cannot accidentally produce a
/// consistent batch.
fn version_graphs(n: usize) -> Vec<Graph> {
    assert!(n >= 5 && n % 2 == 1, "windmill needs odd n");
    vec![path(n), cycle(n), windmill((n - 1) / 2)]
}

#[test]
fn readers_never_stale_never_torn_across_swaps() {
    const N: usize = 401;
    const READERS: usize = 4;
    const ROUNDS: u64 = 24;
    const BATCH: usize = 1_000;

    let graphs = Arc::new(version_graphs(N));
    let queries = Arc::new(random_mixed_batch(N, BATCH, 0x5712E55));
    // Version v (1-based) serves graphs[(v - 1) % 3].
    let expected: Arc<Vec<Vec<QueryAnswer>>> =
        Arc::new(graphs.iter().map(|g| oracle(g, &queries)).collect());

    let (handle, mut rebuilder) = start(&graphs[0], ServeOpts::default());
    let stats = handle.stats_handle();
    let stop = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = (0..READERS)
        .map(|_| {
            let handle = handle.clone();
            let stop = stop.clone();
            let queries = queries.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut reader = handle.reader();
                let mut batches = 0u64;
                let mut last_version = 0u64;
                while !stop.load(Ordering::Acquire) || batches == 0 {
                    // Invariant 3 (staleness floor): observe the published
                    // version first; the adopted snapshot may be newer but
                    // never older.
                    let floor = handle.current_version();
                    let served = reader.answer_batch(&queries);
                    assert!(
                        served.version >= floor,
                        "stale beyond the current epoch: served v{} after observing v{floor}",
                        served.version
                    );
                    assert!(
                        served.version >= last_version,
                        "reader went backwards: v{} after v{last_version}",
                        served.version
                    );
                    last_version = served.version;
                    // Invariant 2 (no torn batches): the whole batch must
                    // equal the oracle for exactly this version's graph.
                    let want = &expected[((served.version - 1) % 3) as usize];
                    assert_eq!(
                        served.answers,
                        want.as_slice(),
                        "torn/mixed batch at version {}",
                        served.version
                    );
                    assert_eq!(reader.fresh_alloc_bytes(), 0, "warm reader allocated");
                    batches += 1;
                }
                batches
            })
        })
        .collect();

    for r in 0..ROUNDS {
        rebuilder.rebuild(&graphs[((r + 1) % 3) as usize]);
    }
    stop.store(true, Ordering::Release);

    // Invariant 1: every reader joins cleanly, having served batches the
    // whole time.
    let total_batches: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("reader panicked"))
        .sum();
    assert!(total_batches >= READERS as u64);
    assert_eq!(handle.current_version(), ROUNDS + 1);

    let rep = handle.stats_report();
    assert_eq!(rep.snapshots_published, ROUNDS + 1);
    assert_eq!(rep.batches_served, total_batches);
    assert_eq!(rep.queries_served, total_batches * BATCH as u64);

    // Invariant 4: full teardown drops every snapshot exactly once.
    drop(handle);
    drop(rebuilder); // drains the retire list (readers are joined, so no hazards)
    let rep = stats.report();
    assert_eq!(
        rep.snapshots_dropped, rep.snapshots_published,
        "snapshot leak: {} published, {} dropped",
        rep.snapshots_published, rep.snapshots_dropped
    );
    assert_eq!(rep.retire_backlog, 0);
}

#[test]
fn pinned_snapshot_is_immutable_under_churn() {
    const N: usize = 201;
    let graphs = version_graphs(N);
    let queries = random_mixed_batch(N, 500, 0xF407);
    let expected_v1 = oracle(&graphs[0], &queries);

    let (handle, mut rebuilder) = start(&graphs[0], ServeOpts::default());
    let reader = handle.reader();
    let pinned = reader.snapshot();
    for r in 0..6 {
        rebuilder.rebuild(&graphs[(r + 1) % 3]);
        // The pinned version-1 snapshot keeps answering as version 1's
        // graph no matter how many epochs have passed.
        let mut scratch = QueryScratch::new();
        assert_eq!(pinned.version, 1);
        assert_eq!(
            pinned.index.answer_batch(&queries, &mut scratch),
            expected_v1.as_slice()
        );
    }
    // It is only reclaimed once released.
    let stats = handle.stats_handle();
    let before = stats.report().snapshots_dropped;
    drop(pinned);
    drop(reader);
    rebuilder.reclaim();
    assert!(stats.report().snapshots_dropped > before);
}

/// The serve path the batch-dynamic engine feeds: evolve one graph through
/// a scripted sequence of edge deltas — half pushed through
/// [`Rebuilder::rebuild_delta`], half queued with
/// [`ServiceHandle::submit_delta`] and drained by `rebuild_pending` — while
/// a concurrent reader checks every served batch against the oracle for
/// exactly the version it is tagged with. Afterwards the stats must
/// account for every rebuild as either incremental or full, with the
/// split matching the reports the rebuilder returned, and every queued
/// delta as submitted and applied.
#[test]
fn delta_rebuilds_serve_exact_versions_under_readers() {
    const N: usize = 160;
    const ROUNDS: usize = 12;
    const BATCH: usize = 400;

    // Base graph: a cycle with chords every fourth vertex — 2-edge-connected,
    // so early deletions split blocks rather than components.
    let mut live: Vec<(V, V)> = (0..N as V).map(|i| (i, (i + 1) % N as V)).collect();
    for i in (0..N as V).step_by(4) {
        live.push((i, (i + 5) % N as V));
    }
    let norm = |(a, b): (V, V)| (a.min(b), a.max(b));
    live = live.into_iter().map(norm).collect();
    live.sort_unstable();
    live.dedup();

    // Script the whole evolution up front (deterministic LCG), building the
    // per-version graph and oracle before any thread starts: version v
    // serves `graphs[v - 1]`.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut graphs = vec![builder::from_edges(N, &live)];
    let mut script: Vec<(Vec<(V, V)>, Vec<(V, V)>)> = Vec::new();
    for _ in 0..ROUNDS {
        let mut dels = Vec::new();
        for _ in 0..2 {
            let e = live[rng() % live.len()];
            if !dels.contains(&e) {
                dels.push(e);
            }
        }
        let mut adds = Vec::new();
        while adds.len() < 2 {
            let e = norm(((rng() % N) as V, (rng() % N) as V));
            if e.0 != e.1 && !live.contains(&e) && !adds.contains(&e) {
                adds.push(e);
            }
        }
        live.retain(|e| !dels.contains(e));
        live.extend_from_slice(&adds);
        live.sort_unstable();
        graphs.push(builder::from_edges(N, &live));
        script.push((adds, dels));
    }
    let queries = Arc::new(random_mixed_batch(N, BATCH, 0xDE17A));
    let expected: Arc<Vec<Vec<QueryAnswer>>> =
        Arc::new(graphs.iter().map(|g| oracle(g, &queries)).collect());

    let (handle, mut rebuilder) = start(&graphs[0], ServeOpts::default());
    let stop = Arc::new(AtomicBool::new(false));
    let checker = {
        let handle = handle.clone();
        let stop = stop.clone();
        let queries = queries.clone();
        let expected = expected.clone();
        std::thread::spawn(move || {
            let mut reader = handle.reader();
            let mut batches = 0u64;
            while !stop.load(Ordering::Acquire) || batches == 0 {
                let served = reader.answer_batch(&queries);
                assert_eq!(
                    served.answers,
                    expected[(served.version - 1) as usize].as_slice(),
                    "batch at version {} does not match that version's graph",
                    served.version
                );
                batches += 1;
            }
            batches
        })
    };

    let (mut submitted, mut incr, mut full) = (0u64, 0u64, 0u64);
    for (r, (adds, dels)) in script.iter().enumerate() {
        let rep = if r % 2 == 0 {
            rebuilder.rebuild_delta(adds, dels)
        } else {
            handle
                .submit_delta(GraphDelta::from_slices(adds, dels))
                .expect("queue accepts while the rebuilder lives");
            submitted += 1;
            rebuilder.rebuild_pending().expect("one queued delta")
        };
        assert_eq!(rep.version, r as u64 + 2, "one publish per round");
        if rep.incremental {
            incr += 1;
        } else {
            full += 1;
        }
    }
    assert!(rebuilder.rebuild_pending().is_none(), "queue fully drained");
    stop.store(true, Ordering::Release);
    assert!(checker.join().expect("reader panicked") >= 1);

    assert_eq!(handle.current_version(), ROUNDS as u64 + 1);
    let rep = handle.stats_report();
    assert_eq!(rep.rebuilds, ROUNDS as u64, "one rebuild per round");
    assert_eq!(
        rep.rebuilds_incremental + rep.rebuilds_full,
        rep.rebuilds,
        "every rebuild is classified"
    );
    assert_eq!(rep.rebuilds_incremental, incr);
    assert_eq!(rep.rebuilds_full, full);
    assert_eq!(rep.deltas_submitted, submitted);
    assert_eq!(rep.deltas_applied, submitted);
}

/// Two arbitrary same-`n` graphs (duplicate edges, self-loops, and
/// disconnected pieces included — the builder sanitizes).
fn arb_graph_pair(nmax: usize, mmax: usize) -> impl Strategy<Value = (Graph, Graph)> {
    (5..nmax).prop_flat_map(move |n| {
        (
            proptest::collection::vec((0..n as V, 0..n as V), 0..mmax),
            proptest::collection::vec((0..n as V, 0..n as V), 0..mmax),
        )
            .prop_map(move |(e1, e2)| (builder::from_edges(n, &e1), builder::from_edges(n, &e2)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Property form of the torn-batch invariant: alternate publishes of
    /// two arbitrary graphs under a concurrent reader; every batch the
    /// reader serves must match one of the two versions' oracles — the
    /// one its version tag names — never a blend.
    #[test]
    fn served_batches_match_exactly_one_version((ga, gb) in arb_graph_pair(40, 90)) {
        let n = ga.n();
        let queries = Arc::new(random_mixed_batch(n, 200, 0xAB0DE));
        // Even versions serve `gb`, odd versions serve `ga`.
        let expected = Arc::new([oracle(&ga, &queries), oracle(&gb, &queries)]);

        let (handle, mut rebuilder) = start(&ga, ServeOpts::default());
        let stop = Arc::new(AtomicBool::new(false));
        let checker = {
            let handle = handle.clone();
            let stop = stop.clone();
            let queries = queries.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut reader = handle.reader();
                let mut batches = 0u64;
                while !stop.load(Ordering::Acquire) || batches == 0 {
                    let served = reader.answer_batch(&queries);
                    let want = &expected[(1 - served.version % 2) as usize];
                    if served.answers != want.as_slice() {
                        return Err(format!("batch at v{} is not v{}'s oracle", served.version, served.version));
                    }
                    batches += 1;
                }
                Ok(batches)
            })
        };
        for r in 0..8u64 {
            rebuilder.rebuild(if r % 2 == 0 { &gb } else { &ga });
        }
        stop.store(true, Ordering::Release);
        let served = checker.join().expect("reader panicked");
        prop_assert!(served.is_ok(), "{}", served.unwrap_err());
        prop_assert_eq!(handle.current_version(), 9);
    }
}
