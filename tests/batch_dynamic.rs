//! Batch-dynamic equivalence: after every `BccEngine::apply_batch`, the
//! engine's result must be indistinguishable from a fresh solve of the
//! evolved graph — same component and block counts, same canonical BCCs,
//! same articulation vertices and bridges — no matter which internal path
//! (bridge fast paths, certificates, region re-solves, re-roots, or the
//! full-solve fallback) the batch took. Deletions are drawn from the live
//! edge set, so scripts routinely cut bridges and tree edges, disconnect
//! components, and reconnect them batches later.

use fast_bcc::core::postprocess::{articulation_points, bridges};
use fast_bcc::core::{canonical_bccs as canon, BccEngine};
use fast_bcc::graph::{builder, Graph, V};
use fast_bcc::BccOpts;
use proptest::prelude::*;

/// The engine's current result vs a from-scratch solve of the same graph.
fn assert_matches_fresh(engine: &BccEngine, ctx: &str) {
    let g = engine.graph().expect("engine is attached");
    let mut fresh = BccEngine::new(BccOpts::default());
    fresh.solve(g);
    assert_eq!(
        engine.result().num_cc,
        fresh.result().num_cc,
        "num_cc {ctx}"
    );
    assert_eq!(
        engine.result().num_bcc,
        fresh.result().num_bcc,
        "num_bcc {ctx}"
    );
    assert_eq!(
        canon(engine.result()),
        canon(fresh.result()),
        "canonical BCCs {ctx}"
    );
    let norm = |mut v: Vec<(V, V)>| {
        for e in v.iter_mut() {
            *e = (e.0.min(e.1), e.0.max(e.1));
        }
        v.sort_unstable();
        v
    };
    assert_eq!(
        articulation_points(engine.result()),
        articulation_points(fresh.result()),
        "articulation points {ctx}"
    );
    assert_eq!(
        norm(bridges(engine.result())),
        norm(bridges(fresh.result())),
        "bridges {ctx}"
    );
}

/// The canonical undirected edge list of `g` (u < v, sorted).
fn edge_list(g: &Graph) -> Vec<(V, V)> {
    let mut edges = Vec::with_capacity(g.m_undirected());
    for u in 0..g.n() as V {
        for &w in g.neighbors(u) {
            if u < w {
                edges.push((u, w));
            }
        }
    }
    edges
}

/// A batch script: per batch, raw insertion pairs plus *indices* into the
/// live edge list at application time — so deletions always strike present
/// edges (bridges and tree edges included) instead of being normalized
/// away.
type Script = Vec<(Vec<(V, V)>, Vec<usize>)>;

fn arb_scripted_graph(
    nmax: usize,
    mmax: usize,
) -> impl Strategy<Value = (usize, Vec<(V, V)>, Script)> {
    (5..nmax).prop_flat_map(move |n| {
        (
            Just(n),
            proptest::collection::vec((0..n as V, 0..n as V), 0..mmax),
            proptest::collection::vec(
                (
                    proptest::collection::vec((0..n as V, 0..n as V), 0..6),
                    proptest::collection::vec(0usize..usize::MAX, 0..6),
                ),
                1..6,
            ),
        )
    })
}

/// Run `script` against both the incremental engine and a mirrored edge
/// set, checking full equivalence after every batch.
fn run_script(n: usize, init: &[(V, V)], script: &Script, churn_frac: f64) {
    if std::env::var_os("BD_TEST_DEBUG").is_some() {
        eprintln!("run_script(n={n}, init={init:?}, script={script:?}, churn={churn_frac})");
    }
    let g0 = builder::from_edges(n, init);
    let mut live = edge_list(&g0);
    let mut engine = BccEngine::new(BccOpts::default());
    engine.dyn_opts_mut().max_churn_frac = churn_frac;
    engine.attach(&g0);

    for (bi, (adds, del_picks)) in script.iter().enumerate() {
        let mut dels: Vec<(V, V)> = del_picks
            .iter()
            .filter(|_| !live.is_empty())
            .map(|&i| live[i % live.len()])
            .collect();
        dels.sort_unstable();
        dels.dedup();

        engine.apply_batch(adds, &dels);

        live.retain(|e| !dels.contains(e));
        for &(a, b) in adds {
            let e = (a.min(b), a.max(b));
            if e.0 != e.1 && !live.contains(&e) {
                live.push(e);
            }
        }
        live.sort_unstable();
        let report = engine.last_apply_report().expect("batch ran");
        assert_eq!(
            edge_list(engine.graph().unwrap()),
            live,
            "edge mirror diverged at batch {bi}"
        );
        assert_matches_fresh(&engine, &format!("batch {bi} ({report:?})"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Arbitrary add/del scripts with the churn threshold disabled, so
    /// every incremental machinery path gets exercised and must agree
    /// with a fresh solve after each batch.
    #[test]
    fn incremental_batches_match_fresh_solves(
        (n, init, script) in arb_scripted_graph(40, 90)
    ) {
        run_script(n, &init, &script, 1.0);
    }

    /// The same scripts under the default churn threshold: small graphs
    /// force the full-solve fallback often, which must be just as exact.
    #[test]
    fn default_threshold_batches_match_fresh_solves(
        (n, init, script) in arb_scripted_graph(30, 40)
    ) {
        run_script(n, &init, &script, fast_bcc::core::dynamic::DynOpts::default().max_churn_frac);
    }
}

/// Deterministic disconnect/reconnect ride-through: cut a ring into arcs,
/// sever them into separate components, then stitch everything back —
/// exercising bridge deletions, component splits, cross-component
/// insertions (including at non-root vertices), and block re-merges in
/// one scripted life cycle.
#[test]
fn disconnect_then_reconnect_round_trip() {
    use fast_bcc::graph::generators::classic::cycle;
    let n: V = 60;
    let g0 = cycle(n as usize);
    let mut engine = BccEngine::new(BccOpts::default());
    engine.attach(&g0);

    // One cycle edge gone: a single path-shaped component, all bridges.
    engine.apply_batch(&[], &[(0, n - 1)]);
    assert_matches_fresh(&engine, "cycle minus one edge");
    assert_eq!(engine.result().num_cc, 1);

    // Two more cuts: three separate path components.
    engine.apply_batch(&[], &[(19, 20), (39, 40)]);
    assert_matches_fresh(&engine, "three arcs");
    assert_eq!(engine.result().num_cc, 3);

    // Reconnect the middle arc to both outer arcs at interior vertices —
    // cross-component insertions where neither endpoint is a tree root.
    engine.apply_batch(&[(10, 30), (30, 50)], &[]);
    assert_matches_fresh(&engine, "stitched back");
    assert_eq!(engine.result().num_cc, 1);

    // Close a ring over the seams: the chord turns the stitched spine
    // into one large block again.
    engine.apply_batch(&[(10, 50)], &[]);
    assert_matches_fresh(&engine, "ring closed");
    assert_eq!(engine.result().num_cc, 1);
}
