//! Integration tests for the persistent work-sharing pool runtime:
//! warm solves spawn no OS threads, concurrent engines on separate OS
//! threads coexist on the shared pool, and solve output is identical
//! across worker budgets.

use fast_bcc::baselines::hopcroft_tarjan;
use fast_bcc::prelude::*;
use fastbcc_primitives::worker_local::WorkerLocal;
use fastbcc_primitives::{max_workers, pool_spawns, worker_index};
use std::sync::Mutex;

/// Serializes the pool-sensitive tests: the spawn counter is global to
/// the test process, so tests that assert on it must not interleave with
/// other tests entering fresh worker budgets.
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    POOL_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Acceptance: after a warm-up solve, a full `BccEngine::solve` spawns
/// **zero** new OS threads — the pool's workers persist and park.
#[test]
#[cfg_attr(miri, ignore = "OS threads, spin loops, and wall-clock timing")]
fn warm_solve_spawns_zero_threads() {
    let _guard = lock();
    let g = generators::grid2d(120, 120, false);
    let mut engine = BccEngine::new(BccOpts::default());
    engine.solve(&g); // warm-up: may lazily spawn pool workers
    let spawned = pool_spawns();
    for _ in 0..3 {
        engine.solve(&g);
    }
    assert_eq!(
        pool_spawns(),
        spawned,
        "a warm BccEngine::solve spawned new OS threads"
    );
}

/// Two engines solving different graphs from two OS threads share the
/// pool: both produce correct BCCs (vs. Hopcroft–Tarjan) and the pool
/// never grows past the default budget (no oversubscription, no panics).
#[test]
#[cfg_attr(miri, ignore = "OS threads, spin loops, and wall-clock timing")]
fn concurrent_engines_share_the_pool() {
    let _guard = lock();
    let ga = generators::grid2d(90, 90, false);
    let gb = generators::web_like(12, 30_000, 0xFA57_BCC);
    let expect_a = hopcroft_tarjan(&ga, false).num_bcc;
    let expect_b = hopcroft_tarjan(&gb, false).num_bcc;

    std::thread::scope(|s| {
        let ta = s.spawn(|| {
            let mut engine = BccEngine::new(BccOpts::default());
            (0..3)
                .map(|_| engine.solve(&ga).num_bcc)
                .collect::<Vec<_>>()
        });
        let tb = s.spawn(|| {
            let mut engine = BccEngine::new(BccOpts::default());
            (0..3)
                .map(|_| engine.solve(&gb).num_bcc)
                .collect::<Vec<_>>()
        });
        let counts_a = ta.join().expect("engine A panicked");
        let counts_b = tb.join().expect("engine B panicked");
        assert!(counts_a.iter().all(|&c| c == expect_a));
        assert!(counts_b.iter().all(|&c| c == expect_b));
    });

    // Budget check: the shared pool never spawns more workers than the
    // default budget admits, no matter how many engines submit to it.
    let budget = fastbcc_primitives::num_threads().max(1);
    assert!(
        pool_spawns() < budget.max(2),
        "pool spawned {} workers with a default budget of {budget}",
        pool_spawns()
    );
}

/// Nested parallel operations never observe a worker identity outside
/// the `max_workers()` ceiling, so `WorkerLocal` indexing stays in bounds
/// even under a worker budget far beyond the hardware — the invariant the
/// per-worker frontier arenas rely on. Every leaf writes through its
/// slot and the total must balance (no slot lost, none double-counted).
#[test]
#[cfg_attr(miri, ignore = "OS threads, spin loops, and wall-clock timing")]
fn nested_ops_never_index_worker_local_out_of_bounds() {
    let _guard = lock();
    let arenas = WorkerLocal::<Vec<u32>>::default();
    let outer = 8usize;
    let inner = 512usize;
    // A budget well past the ceiling: the pool must clamp identities, not
    // mint new ones.
    with_threads(4 * max_workers().max(2), || {
        fastbcc_primitives::par::par_for_grain(outer, 1, |o| {
            fastbcc_primitives::par::par_for_grain(inner, 16, |i| {
                if let Some(w) = worker_index() {
                    assert!(w < max_workers(), "worker index {w} escaped the ceiling");
                }
                arenas.with(|buf| buf.push((o * inner + i) as u32));
            });
        });
    });
    let mut arenas = arenas;
    let mut all = Vec::new();
    arenas.append_to(&mut all);
    assert_eq!(all.len(), outer * inner);
    all.sort_unstable();
    assert!(all.iter().enumerate().all(|(i, &x)| x == i as u32));
}

/// Solve output is identical across worker budgets of 1, 2, and the
/// hardware default. Parallel-iterator `collect`s have deterministic
/// piece boundaries (input length and budget only, never timing), so the
/// BCC *partition* must not depend on the schedule; raw label values may
/// pick different representatives under racy Last-CC, so the partition is
/// compared in first-occurrence normal form.
#[test]
#[cfg_attr(miri, ignore = "OS threads, spin loops, and wall-clock timing")]
fn solve_output_is_identical_across_thread_counts() {
    let _guard = lock();
    let g = generators::grid2d_sampled(70, 70, 0.93, 0x5EED_1DD);
    let expect = hopcroft_tarjan(&g, false).num_bcc;

    fn normalize(labels: &[u32]) -> Vec<u32> {
        let mut rename = std::collections::HashMap::new();
        labels
            .iter()
            .map(|&l| {
                let next = rename.len() as u32;
                *rename.entry(l).or_insert(next)
            })
            .collect()
    }

    let hw = fastbcc_primitives::num_threads().max(1);
    let solve_at = |k: usize| {
        with_threads(k, || {
            let r = fast_bcc(&g, BccOpts::default());
            assert_eq!(r.num_bcc, expect, "wrong BCC count at {k} threads");
            (normalize(&r.labels), r.num_bcc, r.num_cc)
        })
    };
    let base = solve_at(1);
    for k in [2, hw] {
        assert_eq!(solve_at(k), base, "solve diverged at {k} threads");
    }
}

/// Same determinism, but with the submitting lane of a `join` pinned busy
/// so the whole solve is serviced through the work-stealing deques: the
/// BCC partition must not depend on *which* worker ran which range. The
/// spinner releases as soon as the solve completes (200 ms failsafe when
/// no worker attaches, e.g. every budget running inline on one core).
#[test]
#[cfg_attr(miri, ignore = "OS threads, spin loops, and wall-clock timing")]
fn solve_partition_stable_under_forced_steals() {
    let _guard = lock();
    let g = generators::grid2d_sampled(60, 60, 0.93, 0xFA57_BCC);
    let expect = hopcroft_tarjan(&g, false).num_bcc;

    fn normalize(labels: &[u32]) -> Vec<u32> {
        let mut rename = std::collections::HashMap::new();
        labels
            .iter()
            .map(|&l| {
                let next = rename.len() as u32;
                *rename.entry(l).or_insert(next)
            })
            .collect()
    }

    let base = with_threads(1, || {
        let r = fast_bcc(&g, BccOpts::default());
        (normalize(&r.labels), r.num_bcc, r.num_cc)
    });
    for k in [2usize, 8] {
        let run = with_threads(k, || {
            use std::sync::atomic::{AtomicBool, Ordering};
            let stop = AtomicBool::new(false);
            let (_, r) = rayon::join(
                || {
                    let t0 = std::time::Instant::now();
                    while !stop.load(Ordering::Acquire)
                        && t0.elapsed() < std::time::Duration::from_millis(200)
                    {
                        std::hint::spin_loop();
                    }
                },
                || {
                    let r = fast_bcc(&g, BccOpts::default());
                    stop.store(true, Ordering::Release);
                    (normalize(&r.labels), r.num_bcc, r.num_cc)
                },
            );
            r
        });
        assert_eq!(run.1, expect, "wrong BCC count under steals at {k} threads");
        assert_eq!(run, base, "solve diverged under steals at {k} threads");
    }
}

/// The pool's steal telemetry is observable through the facade and never
/// runs backwards: process-lifetime counters, so benchmarks can subtract
/// adjacent readings to attribute steals to a run.
#[test]
#[cfg_attr(miri, ignore = "OS threads, spin loops, and wall-clock timing")]
fn steal_counters_observable_through_facade() {
    let _guard = lock();
    let before_steals = fastbcc_primitives::steal_count();
    let before_depth = fastbcc_primitives::deque_max_depth();
    let g = generators::grid2d(80, 80, false);
    let r = with_threads(fastbcc_primitives::num_threads().max(2), || {
        fast_bcc(&g, BccOpts::default())
    });
    assert!(r.num_bcc > 0);
    assert!(fastbcc_primitives::steal_count() >= before_steals);
    assert!(fastbcc_primitives::deque_max_depth() >= before_depth);
}
