//! # fast-bcc
//!
//! **FAST-BCC** — *Provably Fast and Space-Efficient Parallel
//! Biconnectivity* (Dong, Wang, Gu, Sun — PPoPP 2023), reproduced in Rust.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`fast_bcc`] — the parallel BCC algorithm: `O(n + m)` expected work,
//!   `O(log³ n)` span w.h.p., `O(n)` auxiliary space;
//! * [`BccEngine`] — the scratch-pooled repeated-query solver: one
//!   `Workspace` owns every per-phase array, so solving many graphs
//!   amortizes all major allocations (the second solve of a same-shaped
//!   input allocates nothing);
//! * [`BccIndex`] — the batched online-query layer: built once per solve
//!   from the block–cut forest (Euler-tour LCA over a CSR forest), it
//!   answers `same_bcc` / `is_articulation` / `is_bridge` /
//!   `cut_vertices_on_path` in `O(1)`–`O(log n)` and serves parallel
//!   batches allocation-free through a pooled [`QueryScratch`];
//! * [`graph`] — CSR graphs, parallel builders, and the synthetic
//!   generator suite;
//! * [`connectivity`] — LDD-UF-JTB parallel connectivity with spanning
//!   forests;
//! * [`ett`] — Euler tour technique and parallel list ranking;
//! * [`serve`] — the always-on query service: epoch-swapped immutable
//!   index snapshots, wait-free readers, a background rebuilder, and
//!   version-tagged batched answers (see `docs/serving.md`);
//! * [`baselines`] — Hopcroft–Tarjan, Tarjan–Vishkin, and the BFS-skeleton
//!   algorithms the paper compares against;
//! * [`primitives`] — the ParlayLib-equivalent parallel primitive layer.
//!
//! ## Quickstart
//!
//! ```
//! use fast_bcc::prelude::*;
//!
//! // Two triangles sharing vertex 0 (a "bowtie"): two BCCs, one
//! // articulation point.
//! let g = fast_bcc::graph::builder::from_edges(
//!     5,
//!     &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)],
//! );
//! let r = fast_bcc(&g, BccOpts::default());
//! assert_eq!(r.num_bcc, 2);
//! assert_eq!(articulation_points(&r), vec![0]);
//! ```

pub use fastbcc_baselines as baselines;
pub use fastbcc_connectivity as connectivity;
pub use fastbcc_core as core;
pub use fastbcc_ett as ett;
pub use fastbcc_graph as graph;
pub use fastbcc_primitives as primitives;
pub use fastbcc_serve as serve;

pub use fastbcc_core::{
    fast_bcc, BccEngine, BccIndex, BccOpts, BccResult, Breakdown, CcScheme, Query, QueryAnswer,
    QueryScratch, Workspace,
};

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use fastbcc_core::block_cut_tree::{block_cut_tree, BcNode, BlockCutTree};
    pub use fastbcc_core::postprocess::{
        articulation_points, bcc_membership_counts, bridges, canonical_bccs, largest_bcc_size,
    };
    pub use fastbcc_core::query::{random_mixed_batch, BccIndex, Query, QueryAnswer, QueryScratch};
    pub use fastbcc_core::{
        fast_bcc, BccEngine, BccOpts, BccResult, Breakdown, CcScheme, Workspace,
    };
    pub use fastbcc_graph::{builder, generators, stats, EdgeList, Graph, NONE, V};
    pub use fastbcc_primitives::with_threads;
    pub use fastbcc_serve::{ServeOpts, ServedBatch, ServiceHandle, ServiceReader};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_runs() {
        let g = builder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let r = fast_bcc(&g, BccOpts::default());
        assert_eq!(r.num_bcc, 2);
        assert_eq!(articulation_points(&r), vec![0]);
        assert!(bridges(&r).is_empty());
    }
}
